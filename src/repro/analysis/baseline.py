"""Grandfathered-findings baseline for the static invariant checker.

A baseline entry silences exactly one finding fingerprint — ``(rule,
check, file, symbol)``, deliberately line-number-free — and **must**
carry a justification string explaining why the flagged code is
intentionally kept.  The checker reports entries that no longer match
anything as *stale* so the baseline shrinks as code is fixed instead of
accumulating dead suppressions.

File format (``analysis-baseline.json`` at the repo root)::

    {
      "version": 1,
      "findings": [
        {
          "rule": "determinism",
          "check": "set-argument",
          "file": "constraints/repository.py",
          "symbol": "ConstraintRepository.replace_derived",
          "justification": "why this is safe"
        }
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .framework import AnalysisError, Finding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One suppressed fingerprint plus the reason it is allowed to exist."""

    rule: str
    check: str
    file: str
    symbol: str
    justification: str

    @property
    def fingerprint(self) -> Tuple[str, str, str, str]:
        return (self.rule, self.check, self.file, self.symbol)


class Baseline:
    """The set of grandfathered findings loaded from disk."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._by_fingerprint: Dict[Tuple[str, str, str, str], BaselineEntry] = {}
        for entry in self.entries:
            if entry.fingerprint in self._by_fingerprint:
                raise AnalysisError(
                    f"duplicate baseline entry for {entry.fingerprint!r}"
                )
            self._by_fingerprint[entry.fingerprint] = entry

    @classmethod
    def load(cls, path: Optional[Path]) -> "Baseline":
        """Load a baseline file; a missing path yields an empty baseline."""
        if path is None or not Path(path).is_file():
            return cls()
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"invalid baseline JSON in {path}: {exc}") from None
        if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
            raise AnalysisError(
                f"baseline {path} must be an object with version {BASELINE_VERSION}"
            )
        entries = []
        for raw in payload.get("findings", []):
            missing = [
                key
                for key in ("rule", "check", "file", "symbol", "justification")
                if not isinstance(raw.get(key), str) or not raw.get(key).strip()
            ]
            if missing:
                raise AnalysisError(
                    f"baseline entry {raw!r} is missing non-empty {missing}"
                    " (every suppression needs a justification)"
                )
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    check=raw["check"],
                    file=raw["file"],
                    symbol=raw["symbol"],
                    justification=raw["justification"],
                )
            )
        return cls(entries)

    def match(self, finding: Finding) -> Optional[BaselineEntry]:
        return self._by_fingerprint.get(finding.fingerprint)

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Tuple[Finding, BaselineEntry]], List[BaselineEntry]]:
        """Partition findings into (new, baselined) and report stale entries."""
        new: List[Finding] = []
        baselined: List[Tuple[Finding, BaselineEntry]] = []
        matched = set()
        for finding in findings:
            entry = self.match(finding)
            if entry is None:
                new.append(finding)
            else:
                baselined.append((finding, entry))
                matched.add(entry.fingerprint)
        stale = [e for e in self.entries if e.fingerprint not in matched]
        return new, baselined, stale
