"""determinism: no hidden nondeterminism in result-affecting layers.

The engines promise byte-identical answers across modes *and across
processes* (the parallel engine forks workers, so ``PYTHONHASHSEED``
differs between runs).  PR 5's ``HashIndex`` bug — insertion-order
buckets leaking arrival order into rows — is the motivating incident.
In ``engine/``, ``constraints/``, ``durability/`` and ``replication/``
(recovery must rebuild byte-identical state, and replicas must converge
to byte-identical stores, so the WAL/snapshot and frame-shipping layers
are held to the same standard) this pass flags:

* ``unseeded-random`` — module-level :mod:`random` functions (or
  ``random.Random()`` with no seed).  Any stochastic choice must thread
  an explicit seed so runs are reproducible.
* ``wall-clock`` — calendar-clock reads (``time.time``,
  ``datetime.now`` …).  Monotonic/``perf_counter`` timings are fine
  (they only feed reports); calendar time in a result-affecting layer
  is a nondeterminism smell.
* ``set-iteration`` — iterating a value statically known to be a
  ``set``/``frozenset`` in an order-sensitive position: ``for`` loops,
  non-set comprehensions, ``list()``/``tuple()``/``iter()``/
  ``enumerate()`` materialization, ``str.join``.  String hashes are
  randomized per process, so set order over strings differs between the
  parent and a forked worker.  Order-insensitive reductions (``sum``,
  ``len``, ``any``/``all``, ``min``/``max``, ``sorted``, rebuilding a
  set) are allowed — ``sorted(the_set)`` is the canonical fix.
* ``set-argument`` — the same hazard one call deep: passing a known set
  to a same-module function whose matching parameter is iterated
  order-sensitively.  (This is exactly the shape of the
  ``ConstraintGroupManager.retrieve_relevant`` → ``fetch`` bug this
  pass was calibrated on.)

Dict iteration is deliberately *not* flagged: Python dicts iterate in
insertion order, so a dict built deterministically iterates
deterministically — sets are the hazard.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..astutils import attr_chain, enclosing_function_index
from ..framework import AnalysisContext, AnalysisPass, Finding

SCOPE_PREFIXES = (
    "engine/",
    "constraints/",
    "durability/",
    "replication/",
    "tuning/",
)

RANDOM_MODULE_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "triangular",
        "getrandbits",
        "randbytes",
        "normalvariate",
        "expovariate",
    }
)
WALL_CLOCK_TAILS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "sum", "len", "any", "all", "min", "max", "set", "frozenset"}
)
SEQUENCING_CALLS = frozenset({"list", "tuple", "iter", "enumerate"})
SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet"})
SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def _parent_map(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in SET_ANNOTATIONS
    return isinstance(annotation, ast.Name) and annotation.id in SET_ANNOTATIONS


class _Scope:
    """Known-set name tracking for one function (or the module body)."""

    def __init__(self, root: ast.AST) -> None:
        self.root = root
        self.known: Set[str] = set()
        if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in list(root.args.args) + list(root.args.kwonlyargs):
                if _annotation_is_set(arg.annotation):
                    self.known.add(arg.arg)
        # Flow-insensitive: a name ever bound to a set expression counts.
        changed = True
        while changed:
            changed = False
            for node in ast.walk(root):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    if _annotation_is_set(node.annotation) and isinstance(
                        target, ast.Name
                    ):
                        if target.id not in self.known:
                            self.known.add(target.id)
                            changed = True
                if (
                    isinstance(target, ast.Name)
                    and value is not None
                    and self.is_set_expr(value)
                    and target.id not in self.known
                ):
                    self.known.add(target.id)
                    changed = True

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.known
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SET_METHODS
            ):
                return self.is_set_expr(node.func.value)
        return False


class DeterminismPass(AnalysisPass):
    rule = "determinism"
    description = (
        "no unseeded random, wall-clock reads, or order-sensitive "
        "set iteration in engine/ and constraints/"
    )

    def run(self, context: AnalysisContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for prefix in SCOPE_PREFIXES:
            for info in context.in_dir(prefix):
                findings.extend(self._check_module(info))
        return findings

    def _check_module(self, info) -> List[Finding]:
        tree = info.tree
        functions = enclosing_function_index(tree)
        parents = _parent_map(tree)
        findings: List[Finding] = []
        findings.extend(self._check_random(info, tree, functions))
        findings.extend(self._check_wall_clock(info, tree, functions))

        # One scope per function, plus the module body; each scope skips
        # statements owned by an inner function scope so a finding is
        # attributed exactly once.
        scopes: List[Tuple[str, ast.AST]] = [("<module>", tree)]
        scopes.extend(functions)
        function_nodes = {id(func) for _, func in functions}
        sensitive = self._order_sensitive_params(functions, parents)
        for qualname, root in scopes:
            scope = _Scope(root)
            for node in ast.walk(root):
                if id(node) in function_nodes and node is not root:
                    continue  # reported under the inner scope instead
                owner = self._owning_scope(node, parents, function_nodes, root)
                if owner is not root:
                    continue
                findings.extend(
                    self._check_set_usage(info, scope, qualname, node, parents)
                )
                findings.extend(
                    self._check_set_argument(
                        info, scope, qualname, node, sensitive
                    )
                )
        return findings

    # ------------------------------------------------------------------
    # unseeded random / wall clock
    # ------------------------------------------------------------------
    def _check_random(self, info, tree, functions) -> List[Finding]:
        random_aliases: Set[str] = set()
        direct_funcs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in RANDOM_MODULE_FUNCS:
                        direct_funcs.add(alias.asname or alias.name)
        if not random_aliases and not direct_funcs:
            return []
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            flagged = None
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in random_aliases
            ):
                if node.func.attr in RANDOM_MODULE_FUNCS:
                    flagged = f"random.{node.func.attr}"
                elif node.func.attr == "Random" and not (
                    node.args or node.keywords
                ):
                    flagged = "random.Random()"
            elif isinstance(node.func, ast.Name) and node.func.id in direct_funcs:
                flagged = node.func.id
            if flagged:
                findings.append(
                    self.finding(
                        check="unseeded-random",
                        file=info.relpath,
                        line=node.lineno,
                        symbol=self._symbol(functions, node, flagged),
                        message=(
                            f"{flagged} draws from the process-global"
                            " generator; thread an explicit"
                            " random.Random(seed) so runs reproduce"
                        ),
                    )
                )
        return findings

    def _check_wall_clock(self, info, tree, functions) -> List[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            chain = attr_chain(node)
            if chain and len(chain) >= 2 and tuple(chain[-2:]) in WALL_CLOCK_TAILS:
                findings.append(
                    self.finding(
                        check="wall-clock",
                        file=info.relpath,
                        line=node.lineno,
                        symbol=self._symbol(functions, node, ".".join(chain[-2:])),
                        message=(
                            f"{'.'.join(chain)} reads the calendar clock"
                            " in a result-affecting layer; use"
                            " time.perf_counter()/monotonic() for"
                            " timings, or thread the timestamp in"
                        ),
                    )
                )
        return findings

    # ------------------------------------------------------------------
    # set iteration
    # ------------------------------------------------------------------
    def _check_set_usage(
        self, info, scope: _Scope, qualname: str, node: ast.AST, parents
    ) -> List[Finding]:
        hit: Optional[Tuple[int, str]] = None
        if isinstance(node, (ast.For, ast.AsyncFor)) and scope.is_set_expr(
            node.iter
        ):
            hit = (node.iter.lineno, self._describe(node.iter))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                if scope.is_set_expr(generator.iter):
                    if not self._reduced(node, parents):
                        hit = (node.lineno, self._describe(generator.iter))
                    break
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in SEQUENCING_CALLS
                and node.args
                and scope.is_set_expr(node.args[0])
                and not self._reduced(node, parents)
            ):
                hit = (node.lineno, self._describe(node.args[0]))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and scope.is_set_expr(node.args[0])
            ):
                hit = (node.lineno, self._describe(node.args[0]))
        if hit is None:
            return []
        line, described = hit
        return [
            self.finding(
                check="set-iteration",
                file=info.relpath,
                line=line,
                symbol=f"{qualname}:{described}",
                message=(
                    f"iteration order of set {described} can leak into"
                    " results (string hashes are randomized per process);"
                    f" iterate sorted({described}) or reduce"
                    " order-insensitively"
                ),
            )
        ]

    def _check_set_argument(
        self, info, scope: _Scope, qualname: str, node: ast.AST, sensitive
    ) -> List[Finding]:
        if not isinstance(node, ast.Call):
            return []
        callee: Optional[str] = None
        if isinstance(node.func, ast.Name):
            callee = node.func.id
        elif isinstance(node.func, ast.Attribute) and isinstance(
            node.func.value, ast.Name
        ):
            # Same-module method/helper calls through self/cls only; an
            # arbitrary receiver could be a different class entirely.
            if node.func.value.id in ("self", "cls"):
                callee = node.func.attr
        if callee is None or callee not in sensitive:
            return []
        params, callee_qualname = sensitive[callee]
        findings = []
        for position, arg in enumerate(node.args):
            param = params.get(position)
            if param is not None and scope.is_set_expr(arg):
                findings.append(self._argument_finding(
                    info, qualname, node, arg, callee_qualname, param
                ))
        by_name = {name: name for name in params.values()}
        for keyword in node.keywords:
            if keyword.arg in by_name and scope.is_set_expr(keyword.value):
                findings.append(self._argument_finding(
                    info, qualname, node, keyword.value, callee_qualname,
                    keyword.arg,
                ))
        return findings

    def _argument_finding(
        self, info, qualname, node, arg, callee_qualname, param
    ) -> Finding:
        described = self._describe(arg)
        return self.finding(
            check="set-argument",
            file=info.relpath,
            line=node.lineno,
            symbol=f"{qualname}->{callee_qualname}:{param}",
            message=(
                f"set {described} is passed to {callee_qualname}(), whose"
                f" parameter '{param}' is iterated order-sensitively —"
                " pass sorted() input (or sort inside the callee) so the"
                " order cannot differ across processes"
            ),
        )

    def _order_sensitive_params(
        self, functions, parents
    ) -> Dict[str, Tuple[Dict[int, str], str]]:
        """name -> (positional index -> param name, qualname).

        A parameter is order-sensitive when the function iterates it in
        one of the flagged positions (for loop, non-set comprehension,
        sequencing call, join) — regardless of whether the *function*
        knows it is a set; the hazard is decided at the call site.
        """
        result: Dict[str, Tuple[Dict[int, str], str]] = {}
        for qualname, func in functions:
            args = func.args.args
            offset = 1 if args and args[0].arg in ("self", "cls") else 0
            param_names = {arg.arg for arg in args[offset:]}
            if not param_names:
                continue
            used: Set[str] = set()
            for node in ast.walk(func):
                candidate: Optional[ast.expr] = None
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    candidate = node.iter
                elif isinstance(
                    node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
                ):
                    for generator in node.generators:
                        if (
                            isinstance(generator.iter, ast.Name)
                            and generator.iter.id in param_names
                            and not self._reduced(node, parents)
                        ):
                            used.add(generator.iter.id)
                elif isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Name)
                        and node.func.id in SEQUENCING_CALLS
                        and node.args
                        and not self._reduced(node, parents)
                    ):
                        candidate = node.args[0]
                    elif (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "join"
                        and node.args
                    ):
                        candidate = node.args[0]
                if isinstance(candidate, ast.Name) and candidate.id in param_names:
                    used.add(candidate.id)
            if used:
                index_map = {
                    position - offset: arg.arg
                    for position, arg in enumerate(args)
                    if arg.arg in used
                }
                # Register under both the bare function name and the
                # method name (self.<name> call sites resolve the same).
                result.setdefault(func.name, (index_map, qualname))
        return result

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _reduced(node: ast.AST, parents) -> bool:
        """Whether ``node`` is directly consumed by an order-insensitive
        reduction (``sorted(...)``, ``sum(...)``, …)."""
        parent = parents.get(id(node))
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ORDER_INSENSITIVE_CONSUMERS
            and any(arg is node for arg in parent.args)
        )

    @staticmethod
    def _owning_scope(node, parents, function_nodes, root):
        """The nearest enclosing function node (or the module root)."""
        current = parents.get(id(node))
        while current is not None:
            if id(current) in function_nodes:
                return current
            current = parents.get(id(current))
        return root

    @staticmethod
    def _describe(node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return f"{name}(...)" if name else "<set>"
        return "<set>"

    def _symbol(self, functions, node, detail: str) -> str:
        from ..astutils import symbol_at

        return f"{symbol_at(functions, node)}:{detail}"
