"""protocol-drift: the wire protocol, gateway, errors and docs in lockstep.

The protocol surface lives in four places that have no runtime link:
``server/protocol.py`` declares the op set, ``server/gateway.py``
dispatches on it, ``server/errors.py`` registers the wire error codes,
and ``docs/operations.md`` is the client-facing reference.  Adding an op
(or an error code) to one without the others is invisible until a client
hits the gap.  Sub-checks:

* ``gateway-dispatch`` — every op in ``protocol.OPS`` has a dispatch
  branch in the gateway (an ``.op == "..."`` comparison, or membership in
  ``MUTATION_OPS``).  A bare ``else:`` does not count: the moment a new
  op lands it would silently fall into whatever the else does.
* ``unknown-op-dispatch`` — the reverse drift: the gateway compares
  ``.op`` against a literal that is not in ``OPS`` (a typo or a removed
  op whose branch survived).  The same check audits ``replication/``:
  every ``{"op": ...}`` literal the router sends, and every member of
  its ``READ_OPS`` routing tuple, must be a declared op.
* ``duplicate-error-code`` — two error classes claim the same wire code.
* ``error-class-outside-registry`` — a ``GatewayError`` subclass (or any
  class declaring a ``code`` string) defined in a server or replication
  module other than ``errors.py``; the taxonomy must stay in one
  reviewable file.
* ``op-undocumented`` / ``error-code-undocumented`` — every op and every
  registered code appears (backticked) in ``docs/operations.md``.  Doc
  checks only run when the analysis context has a docs root.
* ``push-frame-outside-protocol`` / ``unknown-push-kind`` — the
  server-initiated push frames (subscription diffs) are part of the wire
  surface too: a ``{"push": ...}`` dict literal anywhere in the audited
  tiers outside ``protocol.py`` bypasses the one reviewable set of frame
  builders, and inside ``protocol.py`` the kind must be declared in
  ``PUSH_KINDS``.  ``push-kind-undocumented`` holds the docs to the same
  standard as ops and error codes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..astutils import imported_names_from, string_tuple_assignment
from ..framework import AnalysisContext, AnalysisPass, Finding

PROTOCOL_MODULE = "server/protocol.py"
GATEWAY_MODULE = "server/gateway.py"
ERRORS_MODULE = "server/errors.py"
OPERATIONS_DOC = "operations.md"
SERVER_PREFIX = "server/"
ROUTER_MODULE = "replication/router.py"
#: Directories audited for stray error classes and op literals.  The
#: replication tier speaks the same wire protocol (the router forwards
#: gateway frames and issues its own RPCs), and the subscriptions tier
#: emits the push frames, so both drift the same way the server does.
WIRE_PREFIXES = (SERVER_PREFIX, "replication/", "subscriptions/")


class ProtocolDriftPass(AnalysisPass):
    rule = "protocol-drift"
    description = (
        "every protocol op has a gateway dispatch branch and a doc row, "
        "and every wire error code is registered once and documented"
    )

    def run(self, context: AnalysisContext) -> Iterable[Finding]:
        protocol = context.module(PROTOCOL_MODULE)
        if protocol is None:
            return []
        ops = string_tuple_assignment(protocol.tree, "OPS")
        mutation_ops = string_tuple_assignment(protocol.tree, "MUTATION_OPS") or []
        if ops is None:
            return []

        push_kinds = string_tuple_assignment(protocol.tree, "PUSH_KINDS") or []

        findings: List[Finding] = []
        findings.extend(self._check_dispatch(context, ops, mutation_ops))
        findings.extend(self._check_router_ops(context, ops))
        findings.extend(self._check_push_frames(context, push_kinds))
        codes = self._error_codes(context, findings)
        findings.extend(self._check_error_locations(context, set(codes)))
        findings.extend(
            self._check_docs(context, ops, sorted(codes), push_kinds)
        )
        return findings

    # ------------------------------------------------------------------
    # Gateway dispatch
    # ------------------------------------------------------------------
    def _check_dispatch(
        self, context: AnalysisContext, ops: List[str], mutation_ops: List[str]
    ) -> List[Finding]:
        gateway = context.module(GATEWAY_MODULE)
        if gateway is None:
            return []
        compared: Dict[str, int] = {}
        covers_mutations = False
        mutation_names = {
            local
            for local, original in imported_names_from(
                gateway.tree, PROTOCOL_MODULE.rsplit("/", 1)[-1][: -len(".py")]
            ).items()
            if original == "MUTATION_OPS"
        } | {"MUTATION_OPS"}
        for node in ast.walk(gateway.tree):
            if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
                continue
            if not (
                isinstance(node.left, ast.Attribute) and node.left.attr == "op"
            ):
                continue
            comparator = node.comparators[0]
            if isinstance(node.ops[0], ast.Eq):
                if isinstance(comparator, ast.Constant) and isinstance(
                    comparator.value, str
                ):
                    compared.setdefault(comparator.value, node.lineno)
            elif isinstance(node.ops[0], ast.In):
                if (
                    isinstance(comparator, ast.Name)
                    and comparator.id in mutation_names
                ):
                    covers_mutations = True

        handled = set(compared)
        if covers_mutations:
            handled.update(mutation_ops)
        findings = []
        for op in ops:
            if op not in handled:
                findings.append(
                    self.finding(
                        check="gateway-dispatch",
                        file=GATEWAY_MODULE,
                        line=0,
                        symbol=op,
                        message=(
                            f"protocol op {op!r} has no explicit dispatch"
                            " branch in the gateway (an implicit else does"
                            " not count: the next op added would silently"
                            " inherit it)"
                        ),
                    )
                )
        for op, line in sorted(compared.items()):
            if op not in ops:
                findings.append(
                    self.finding(
                        check="unknown-op-dispatch",
                        file=GATEWAY_MODULE,
                        line=line,
                        symbol=op,
                        message=(
                            f"gateway dispatches on op {op!r} which is not"
                            " declared in protocol.OPS (typo, or a removed"
                            " op whose branch survived)"
                        ),
                    )
                )
        return findings

    # ------------------------------------------------------------------
    # Replication tier
    # ------------------------------------------------------------------
    def _check_router_ops(
        self, context: AnalysisContext, ops: List[str]
    ) -> List[Finding]:
        """Op literals the replication tier sends must be declared ops.

        The router both classifies incoming frames (``READ_OPS``) and
        issues its own RPCs (``{"op": "..."}`` literals); a typo in
        either silently becomes an ``unknown_op`` error at runtime, so
        the same ``unknown-op-dispatch`` drift check covers them.
        """
        findings = []
        for info in context.in_dir("replication/"):
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Dict):
                    for key, value in zip(node.keys, node.values):
                        if (
                            isinstance(key, ast.Constant)
                            and key.value == "op"
                            and isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                            and value.value not in ops
                        ):
                            findings.append(
                                self.finding(
                                    check="unknown-op-dispatch",
                                    file=info.relpath,
                                    line=value.lineno,
                                    symbol=value.value,
                                    message=(
                                        f"replication tier sends op"
                                        f" {value.value!r} which is not"
                                        " declared in protocol.OPS"
                                    ),
                                )
                            )
            if info.relpath == ROUTER_MODULE:
                read_ops = string_tuple_assignment(info.tree, "READ_OPS") or []
                for op in read_ops:
                    if op not in ops:
                        findings.append(
                            self.finding(
                                check="unknown-op-dispatch",
                                file=info.relpath,
                                line=0,
                                symbol=op,
                                message=(
                                    f"router READ_OPS routes op {op!r}"
                                    " which is not declared in"
                                    " protocol.OPS"
                                ),
                            )
                        )
        return findings

    # ------------------------------------------------------------------
    # Push frames
    # ------------------------------------------------------------------
    def _check_push_frames(
        self, context: AnalysisContext, push_kinds: List[str]
    ) -> List[Finding]:
        """Push-frame dict literals stay in protocol.py with known kinds.

        Push frames are server-initiated and carry no correlation id, so
        clients demultiplex them purely by shape: every producer must go
        through the builders in ``protocol.py``, and each builder's
        ``push`` value must be declared in ``PUSH_KINDS``.
        """
        findings = []
        for prefix in WIRE_PREFIXES:
            for info in context.in_dir(prefix):
                for node in ast.walk(info.tree):
                    if not isinstance(node, ast.Dict):
                        continue
                    for key, value in zip(node.keys, node.values):
                        if not (
                            isinstance(key, ast.Constant)
                            and key.value == "push"
                        ):
                            continue
                        if info.relpath != PROTOCOL_MODULE:
                            findings.append(
                                self.finding(
                                    check="push-frame-outside-protocol",
                                    file=info.relpath,
                                    line=node.lineno,
                                    symbol="push",
                                    message=(
                                        "push-frame dict literal built"
                                        " outside server/protocol.py — use"
                                        " the frame builders so the push"
                                        " surface stays in one reviewable"
                                        " file"
                                    ),
                                )
                            )
                        elif not (
                            isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                            and value.value in push_kinds
                        ):
                            kind = (
                                value.value
                                if isinstance(value, ast.Constant)
                                else ast.dump(value)
                            )
                            findings.append(
                                self.finding(
                                    check="unknown-push-kind",
                                    file=info.relpath,
                                    line=node.lineno,
                                    symbol=str(kind),
                                    message=(
                                        f"push frame kind {kind!r} is not"
                                        " declared in protocol.PUSH_KINDS"
                                    ),
                                )
                            )
        return findings

    # ------------------------------------------------------------------
    # Error registry
    # ------------------------------------------------------------------
    def _error_codes(
        self, context: AnalysisContext, findings: List[Finding]
    ) -> Dict[str, str]:
        """Wire codes registered in errors.py, reporting duplicates."""
        errors = context.module(ERRORS_MODULE)
        codes: Dict[str, str] = {}
        if errors is None:
            return codes
        for node in errors.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            code = self._class_code(node)
            if code is None:
                continue
            if code[0] in codes:
                findings.append(
                    self.finding(
                        check="duplicate-error-code",
                        file=ERRORS_MODULE,
                        line=code[1],
                        symbol=node.name,
                        message=(
                            f"error class {node.name} registers wire code"
                            f" {code[0]!r} already claimed by"
                            f" {codes[code[0]]} — clients branch on the"
                            " code, so it must be unambiguous"
                        ),
                    )
                )
            else:
                codes[code[0]] = node.name
        return codes

    def _check_error_locations(
        self, context: AnalysisContext, known_codes: Set[str]
    ) -> List[Finding]:
        errors = context.module(ERRORS_MODULE)
        error_class_names: Set[str] = set()
        if errors is not None:
            error_class_names = {
                node.name
                for node in errors.tree.body
                if isinstance(node, ast.ClassDef)
            }
        findings = []
        for prefix in WIRE_PREFIXES:
            findings.extend(
                self._scan_error_classes(context, prefix, error_class_names)
            )
        return findings

    def _scan_error_classes(
        self,
        context: AnalysisContext,
        prefix: str,
        error_class_names: Set[str],
    ) -> List[Finding]:
        findings = []
        for info in context.in_dir(prefix):
            if info.relpath == ERRORS_MODULE:
                continue
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                bases = {
                    base.id for base in node.bases if isinstance(base, ast.Name)
                }
                if bases & error_class_names or self._class_code(node):
                    findings.append(
                        self.finding(
                            check="error-class-outside-registry",
                            file=info.relpath,
                            line=node.lineno,
                            symbol=node.name,
                            message=(
                                f"gateway error class {node.name} is"
                                " defined outside server/errors.py — the"
                                " wire-code taxonomy must stay in the one"
                                " registry file this pass audits"
                            ),
                        )
                    )
        return findings

    @staticmethod
    def _class_code(node: ast.ClassDef) -> Optional[Tuple[str, int]]:
        """A class-level ``code = "..."`` assignment, if present."""
        for item in node.body:
            if isinstance(item, ast.Assign):
                for target in item.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "code"
                        and isinstance(item.value, ast.Constant)
                        and isinstance(item.value.value, str)
                    ):
                        return item.value.value, item.lineno
        return None

    # ------------------------------------------------------------------
    # Docs
    # ------------------------------------------------------------------
    def _check_docs(
        self,
        context: AnalysisContext,
        ops: List[str],
        codes: List[str],
        push_kinds: List[str] = (),
    ) -> List[Finding]:
        doc = context.doc_text(OPERATIONS_DOC)
        if doc is None:
            return []
        doc_path = f"docs/{OPERATIONS_DOC}"
        findings = []
        for op in ops:
            if f"`{op}`" not in doc:
                findings.append(
                    self.finding(
                        check="op-undocumented",
                        file=doc_path,
                        line=0,
                        symbol=op,
                        message=(
                            f"protocol op {op!r} has no backticked"
                            " reference row in docs/operations.md"
                        ),
                    )
                )
        for code in codes:
            if f"`{code}`" not in doc:
                findings.append(
                    self.finding(
                        check="error-code-undocumented",
                        file=doc_path,
                        line=0,
                        symbol=code,
                        message=(
                            f"wire error code {code!r} is registered in"
                            " server/errors.py but not documented in"
                            " docs/operations.md"
                        ),
                    )
                )
        for kind in push_kinds:
            if f"`{kind}`" not in doc:
                findings.append(
                    self.finding(
                        check="push-kind-undocumented",
                        file=doc_path,
                        line=0,
                        symbol=kind,
                        message=(
                            f"push frame kind {kind!r} is declared in"
                            " protocol.PUSH_KINDS but not documented in"
                            " docs/operations.md"
                        ),
                    )
                )
        return findings
