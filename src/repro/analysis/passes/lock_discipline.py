"""lock-discipline: the readers-writer protocol around the live write path.

The service serializes mutations against query executions with a
writer-priority, **non-reentrant** :class:`~repro.caching.ReadWriteLock`.
That design gives three statically checkable obligations:

* ``mutate-outside-write-lock`` — in ``service/`` modules, any call that
  mutates :class:`ShardedObjectStore` state (``store.insert`` /
  ``update`` / ``delete`` / ``insert_many`` / ``rebuild_indexes`` /
  ``apply_journal``) or :class:`ConstraintRepository` state
  (``repository.add`` / ``add_all`` / ``remove`` / ``replace_derived``)
  must happen lexically inside ``with <lock>.write():`` — or inside a
  helper whose docstring carries the ``write lock held`` marker, the
  repo's convention for lock-inheriting helpers.
* ``lock-held-caller`` — the other half of that convention: every
  same-module call site of a ``write lock held`` helper must itself be
  inside a write block (or inside another such helper).  The marker is a
  proof obligation, not an exemption.
* ``read-escalation`` — inside a ``with <lock>.read():`` block, no
  ``.write()`` or ``.read()`` acquisition of a lock may be opened: the
  lock is non-reentrant and writer-priority, so a nested shared
  acquisition under a waiting writer deadlocks (see the inline warnings
  in ``service.execute_many``).
* ``fork-lock`` — in ``engine/parallel.py``, functions that run on the
  *worker side* of the fork (the pool initializer, ``submit``/``map``
  targets, and everything they call in-module) must not acquire any
  lock: a lock forked while held by another parent thread is permanently
  stuck in the child.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..astutils import attr_chain, enclosing_function_index, symbol_at
from ..framework import AnalysisContext, AnalysisPass, Finding

SERVICE_PREFIX = "service/"
PARALLEL_MODULE = "engine/parallel.py"
STORE_MUTATORS = frozenset(
    {"insert", "insert_many", "update", "delete", "rebuild_indexes", "apply_journal"}
)
REPOSITORY_MUTATORS = frozenset({"add", "add_all", "remove", "replace_derived"})
LOCK_HELD_MARKER = "write lock held"


def _is_lockish(chain: Optional[List[str]]) -> bool:
    """Whether an attribute chain plausibly names a lock object."""
    return bool(chain) and any("lock" in part.lower() for part in chain)


def _with_acquisition(item: ast.withitem) -> Optional[Tuple[List[str], str]]:
    """``(chain, kind)`` for a with-item acquiring a lock; kind is
    ``"read"``/``"write"`` for RW sides, ``"plain"`` for a bare lock."""
    expr = item.context_expr
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr in ("read", "write"):
            chain = attr_chain(expr.func.value)
            if _is_lockish(chain):
                return chain, expr.func.attr
    chain = attr_chain(expr)
    if _is_lockish(chain):
        return chain, "plain"
    return None


def _spans(tree: ast.Module, kinds: Set[str]) -> List[Tuple[int, int]]:
    """Line spans of with-bodies acquiring a lock of one of ``kinds``."""
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                acquisition = _with_acquisition(item)
                if acquisition is not None and acquisition[1] in kinds:
                    end = getattr(node, "end_lineno", node.lineno)
                    spans.append((node.lineno, end))
                    break
    return spans


def _in_spans(line: int, spans: List[Tuple[int, int]]) -> bool:
    return any(start <= line <= end for start, end in spans)


class LockDisciplinePass(AnalysisPass):
    rule = "lock-discipline"
    description = (
        "service mutations hold the write lock, read paths never "
        "escalate, and nothing locks across the fork boundary"
    )

    def run(self, context: AnalysisContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for info in context.in_dir(SERVICE_PREFIX):
            findings.extend(self._check_service_module(info))
        parallel = context.module(PARALLEL_MODULE)
        if parallel is not None:
            findings.extend(self._check_fork_boundary(parallel))
        return findings

    # ------------------------------------------------------------------
    # service/: write-lock coverage and read escalation
    # ------------------------------------------------------------------
    def _check_service_module(self, info) -> List[Finding]:
        tree = info.tree
        functions = enclosing_function_index(tree)
        write_spans = _spans(tree, {"write"})
        lock_held: Dict[str, Tuple[int, int]] = {}
        for qualname, func in functions:
            docstring = ast.get_docstring(func) or ""
            if LOCK_HELD_MARKER in docstring.lower():
                lock_held[func.name] = (
                    func.lineno,
                    getattr(func, "end_lineno", func.lineno),
                )

        def covered(line: int) -> bool:
            return _in_spans(line, write_spans) or any(
                start <= line <= end for start, end in lock_held.values()
            )

        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = node.func.attr
            chain = attr_chain(node.func.value)
            receiver = chain[-1] if chain else ""
            is_store_mutation = attr in STORE_MUTATORS and receiver == "store"
            is_repo_mutation = (
                attr in REPOSITORY_MUTATORS and receiver == "repository"
            )
            if (is_store_mutation or is_repo_mutation) and not covered(
                node.lineno
            ):
                target = "store" if is_store_mutation else "repository"
                findings.append(
                    self.finding(
                        check="mutate-outside-write-lock",
                        file=info.relpath,
                        line=node.lineno,
                        symbol=f"{symbol_at(functions, node)}:{attr}",
                        message=(
                            f"{target} mutation .{attr}() is reached"
                            " without holding the write side of the store"
                            " lock (wrap it in `with"
                            " <lock>.write():` or mark the enclosing"
                            f" helper's docstring '{LOCK_HELD_MARKER}')"
                        ),
                    )
                )
            # Same-module call sites of lock-inheriting helpers.
            if attr in lock_held and not covered(node.lineno):
                findings.append(
                    self.finding(
                        check="lock-held-caller",
                        file=info.relpath,
                        line=node.lineno,
                        symbol=f"{symbol_at(functions, node)}:{attr}",
                        message=(
                            f"{attr}() is documented '{LOCK_HELD_MARKER}'"
                            " but this call site does not hold the write"
                            " lock — the docstring marker is a proof"
                            " obligation for every caller"
                        ),
                    )
                )

        # Read escalation: a nested read()/write() acquisition opened
        # lexically inside a read block (strictly inside, or later in the
        # same multi-item with statement).
        read_spans = _spans(tree, {"read"})
        for node in ast.walk(tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            read_seen_in_statement = False
            for item in node.items:
                acquisition = _with_acquisition(item)
                if acquisition is None or acquisition[1] == "plain":
                    continue
                nested = read_seen_in_statement or any(
                    start < node.lineno <= end for start, end in read_spans
                )
                if acquisition[1] == "read":
                    read_seen_in_statement = True
                if nested:
                    findings.append(
                        self.finding(
                            check="read-escalation",
                            file=info.relpath,
                            line=node.lineno,
                            symbol=symbol_at(functions, node),
                            message=(
                                f"a .{acquisition[1]}() acquisition is"
                                " opened inside a read block — the RW"
                                " lock is non-reentrant and"
                                " writer-priority, so nesting deadlocks"
                                " under a waiting writer"
                            ),
                        )
                    )
        return findings

    # ------------------------------------------------------------------
    # engine/parallel.py: the fork boundary
    # ------------------------------------------------------------------
    def _check_fork_boundary(self, info) -> List[Finding]:
        tree = info.tree
        functions = enclosing_function_index(tree)
        by_name = {func.name: func for _, func in functions}

        worker_roots: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg == "initializer" and isinstance(
                    keyword.value, ast.Name
                ):
                    worker_roots.add(keyword.value.id)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                worker_roots.add(node.args[0].id)

        # Transitive closure over module-local calls by bare name.
        reachable: Set[str] = set()
        frontier = [name for name in worker_roots if name in by_name]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for node in ast.walk(by_name[name]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in by_name
                ):
                    frontier.append(node.func.id)

        findings: List[Finding] = []
        for name in sorted(reachable):
            func = by_name[name]
            for node in ast.walk(func):
                acquisition = None
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        acquisition = _with_acquisition(item)
                        if acquisition:
                            break
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                    and _is_lockish(attr_chain(node.func.value))
                ):
                    acquisition = (attr_chain(node.func.value), "plain")
                if acquisition:
                    findings.append(
                        self.finding(
                            check="fork-lock",
                            file=info.relpath,
                            line=node.lineno,
                            symbol=name,
                            message=(
                                f"worker-side function {name}() acquires"
                                f" {'.'.join(acquisition[0])} — a lock"
                                " held by another parent thread at fork"
                                " time is permanently stuck in the child"
                            ),
                        )
                    )
        return findings
