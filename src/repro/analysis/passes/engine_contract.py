"""engine-contract: plan-node declarations and executor exhaustiveness.

Two sub-checks over the engine layer:

* ``node-declaration`` — every concrete :class:`PlanNode` subclass in
  ``engine/plan.py`` must declare **both** ``required_columns`` and
  ``partition_safe`` in its own class body.  Inheriting the base-class
  defaults silently is how a new node ships with ``partition_safe()``
  accidentally ``False`` (correct but never parallelized) — or, worse,
  how a copied node ships accidentally ``True`` and breaks shard-local
  execution.  The contract must be a visible, reviewed decision per node.
* ``executor-coverage`` — the exhaustiveness matrix: all three executors
  (``executor.py``, ``vectorized.py``, ``parallel.py``) must handle every
  concrete node.  "Handle" means an ``isinstance`` dispatch on the node
  class, or delegation to an executor that does (the parallel engine
  inherits the vectorized engine's node set by instantiating it).  This
  fails the moment an aggregation node lands in one engine but not the
  others — before the byte-parity oracle ever runs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..astutils import class_defs, imported_names_from, own_methods, subclasses_of
from ..framework import AnalysisContext, AnalysisPass, Finding

PLAN_MODULE = "engine/plan.py"
NODE_ROOT = "PlanNode"
REQUIRED_DECLARATIONS = ("required_columns", "partition_safe")

#: The executor modules that must each cover the full node set, and the
#: executor class each one exports (used to resolve delegation).
EXECUTOR_MODULES = (
    "engine/executor.py",
    "engine/vectorized.py",
    "engine/parallel.py",
)
EXECUTOR_CLASSES = {
    "QueryExecutor": "engine/executor.py",
    "VectorizedExecutor": "engine/vectorized.py",
    "ParallelExecutor": "engine/parallel.py",
}


class EngineContractPass(AnalysisPass):
    rule = "engine-contract"
    description = (
        "every plan node declares partition_safe + required_columns, and "
        "all three executors dispatch on the full node set"
    )

    def run(self, context: AnalysisContext) -> Iterable[Finding]:
        plan = context.module(PLAN_MODULE)
        if plan is None:
            return []
        classes = class_defs(plan.tree)
        if NODE_ROOT not in classes:
            return []
        nodes = subclasses_of(classes, NODE_ROOT)
        findings: List[Finding] = []

        for name in sorted(nodes):
            node = nodes[name]
            defined = set(own_methods(node))
            for required in REQUIRED_DECLARATIONS:
                if required not in defined:
                    findings.append(
                        self.finding(
                            check="node-declaration",
                            file=PLAN_MODULE,
                            line=node.lineno,
                            symbol=f"{name}.{required}",
                            message=(
                                f"plan node {name} does not declare"
                                f" {required}() in its own body; the"
                                " partition/column contract must be an"
                                " explicit per-node decision, not an"
                                " inherited default"
                            ),
                        )
                    )

        node_names = set(nodes)
        handled_cache: Dict[str, Set[str]] = {}
        for relpath in EXECUTOR_MODULES:
            if context.module(relpath) is None:
                continue
            handled = self._handled_nodes(
                context, relpath, node_names, handled_cache, set()
            )
            for missing in sorted(node_names - handled):
                findings.append(
                    self.finding(
                        check="executor-coverage",
                        file=relpath,
                        line=0,
                        symbol=missing,
                        message=(
                            f"executor module does not handle plan node"
                            f" {missing} (no isinstance dispatch and no"
                            " delegation to an executor that has one) —"
                            " the three engines must stay exhaustive over"
                            " the same node set"
                        ),
                    )
                )
        return findings

    def _handled_nodes(
        self,
        context: AnalysisContext,
        relpath: str,
        node_names: Set[str],
        cache: Dict[str, Set[str]],
        visiting: Set[str],
    ) -> Set[str]:
        """Node classes ``relpath`` dispatches on, delegation included."""
        if relpath in cache:
            return cache[relpath]
        if relpath in visiting:  # delegation cycle: count nothing twice
            return set()
        visiting.add(relpath)
        info = context.module(relpath)
        handled: Set[str] = set()
        if info is not None:
            for node in ast.walk(info.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2
                ):
                    handled.update(
                        name
                        for name in self._type_names(node.args[1])
                        if name in node_names
                    )
            for delegate in self._delegates(info.tree, relpath):
                handled.update(
                    self._handled_nodes(
                        context, delegate, node_names, cache, visiting
                    )
                )
        visiting.discard(relpath)
        cache[relpath] = handled
        return handled

    @staticmethod
    def _type_names(node: ast.expr) -> List[str]:
        """Class names in an isinstance second argument (name or tuple)."""
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, ast.Tuple):
            return [e.id for e in node.elts if isinstance(e, ast.Name)]
        return []

    @staticmethod
    def _delegates(tree: ast.Module, relpath: str) -> Iterable[str]:
        """Executor modules this one delegates to (imports + instantiates)."""
        instantiated = {
            node.func.id
            for node in ast.walk(tree)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
        }
        for class_name, module in EXECUTOR_CLASSES.items():
            if module == relpath:
                continue
            module_stem = module.rsplit("/", 1)[-1][: -len(".py")]
            imported = imported_names_from(tree, module_stem)
            if class_name in imported.values() and any(
                local == class_name or original == class_name
                for local, original in imported.items()
                if local in instantiated
            ):
                yield module
