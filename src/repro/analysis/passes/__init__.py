"""The concrete invariant passes, one module per rule."""

from typing import List

from ..framework import AnalysisPass
from .determinism import DeterminismPass
from .engine_contract import EngineContractPass
from .lock_discipline import LockDisciplinePass
from .metrics_parity import MetricsParityPass
from .protocol_drift import ProtocolDriftPass

__all__ = [
    "DeterminismPass",
    "EngineContractPass",
    "LockDisciplinePass",
    "MetricsParityPass",
    "ProtocolDriftPass",
    "all_passes",
]


def all_passes() -> List[AnalysisPass]:
    """Fresh instances of every registered pass, in reporting order."""
    return [
        EngineContractPass(),
        LockDisciplinePass(),
        DeterminismPass(),
        ProtocolDriftPass(),
        MetricsParityPass(),
    ]
