"""metrics-parity-surface: the engines must write the same metric fields.

The byte-parity oracle asserts that all three engines return identical
:class:`ExecutionMetrics` *values*.  That oracle can only catch a field
one engine forgot to populate if some test compares that field on a
workload that moves it — a new counter wired into two engines out of
three passes trivially on workloads where the third engine reports 0
vs 0.  This pass closes the gap structurally: the **set of metrics
fields assigned** (``metrics.x = ...`` / ``metrics.x += ...``) must be
identical across ``executor.py``, ``vectorized.py`` and ``parallel.py``,
and every declared field must be written by at least one engine.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..astutils import attr_chain
from ..framework import AnalysisContext, AnalysisPass, Finding

METRICS_MODULE = "engine/executor.py"
METRICS_CLASS = "ExecutionMetrics"
EXECUTOR_MODULES = (
    "engine/executor.py",
    "engine/vectorized.py",
    "engine/parallel.py",
)


class MetricsParityPass(AnalysisPass):
    rule = "metrics-parity-surface"
    description = (
        "the set of ExecutionMetrics fields each executor writes is "
        "identical, and every declared field is written"
    )

    def run(self, context: AnalysisContext) -> Iterable[Finding]:
        metrics_module = context.module(METRICS_MODULE)
        if metrics_module is None:
            return []
        declared = self._declared_fields(metrics_module.tree)
        if not declared:
            return []

        written: Dict[str, Set[str]] = {}
        for relpath in EXECUTOR_MODULES:
            info = context.module(relpath)
            if info is not None:
                written[relpath] = self._written_fields(info.tree, set(declared))
        if not written:
            return []

        findings: List[Finding] = []
        surface: Set[str] = set().union(*written.values())
        for relpath in sorted(written):
            for field in sorted(surface - written[relpath]):
                findings.append(
                    self.finding(
                        check="executor-field",
                        file=relpath,
                        line=0,
                        symbol=field,
                        message=(
                            f"executor never writes ExecutionMetrics."
                            f"{field}, but another executor does — the"
                            " metrics surface must stay identical across"
                            " engines or parity comparisons go blind on"
                            " this counter"
                        ),
                    )
                )
        for field, line in sorted(declared.items()):
            if field not in surface:
                findings.append(
                    self.finding(
                        check="field-unwritten",
                        file=METRICS_MODULE,
                        line=line,
                        symbol=f"{METRICS_CLASS}.{field}",
                        message=(
                            f"ExecutionMetrics declares {field} but no"
                            " executor ever writes it — a dead counter"
                            " reads as 'always equal' in parity checks"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _declared_fields(tree: ast.Module) -> Dict[str, int]:
        """The dataclass fields of ExecutionMetrics, with their lines."""
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == METRICS_CLASS:
                return {
                    item.target.id: item.lineno
                    for item in node.body
                    if isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                }
        return {}

    @staticmethod
    def _written_fields(tree: ast.Module, declared: Set[str]) -> Set[str]:
        """Declared fields assigned through any ``*.metrics.field`` target."""
        written: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and target.attr in declared
                ):
                    continue
                chain = attr_chain(target.value)
                if chain and (
                    chain[-1] == "metrics" or chain[-1].endswith("_metrics")
                ):
                    written.add(target.attr)
        return written
