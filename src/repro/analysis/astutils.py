"""Shared AST plumbing for the invariant passes.

Small, syntactic helpers only — anything pass-specific (what counts as a
mutator, which iteration consumers are order-insensitive) stays in the
pass that owns the judgement.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None when the base isn't a Name.

    Call nodes in the middle of the chain (``a.b().c``) are looked
    through so lock helpers like ``self._lock.read()`` still resolve.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return list(reversed(parts))
        else:
            return None


def dotted_name(node: ast.AST) -> Optional[str]:
    chain = attr_chain(node)
    return ".".join(chain) if chain else None


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, "ast.FunctionDef | ast.AsyncFunctionDef"]]:
    """Yield ``(qualname, def)`` for every function, nesting-aware.

    Methods get ``Class.method`` qualnames; nested defs join with ``.``.
    """

    def walk(node: ast.AST, prefix: str) -> Iterator[
        Tuple[str, "ast.FunctionDef | ast.AsyncFunctionDef"]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")

    yield from walk(tree, "")


def enclosing_function_index(
    tree: ast.Module,
) -> List[Tuple[str, "ast.FunctionDef | ast.AsyncFunctionDef"]]:
    """Function list for symbol attribution, innermost resolvable by span."""
    return list(iter_functions(tree))


def symbol_at(
    functions: List[Tuple[str, "ast.FunctionDef | ast.AsyncFunctionDef"]],
    node: ast.AST,
) -> str:
    """Qualname of the innermost function containing ``node`` (or module)."""
    line = getattr(node, "lineno", 0)
    best = "<module>"
    best_span = None
    for qualname, func in functions:
        end = getattr(func, "end_lineno", func.lineno)
        if func.lineno <= line <= end:
            span = end - func.lineno
            if best_span is None or span <= best_span:
                best = qualname
                best_span = span
    return best


def class_defs(tree: ast.Module) -> Dict[str, ast.ClassDef]:
    """Top-level classes of a module, by name."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }


def subclasses_of(
    classes: Dict[str, ast.ClassDef], root: str
) -> Dict[str, ast.ClassDef]:
    """Transitive same-module subclasses of ``root`` (excluding it)."""
    children: Dict[str, List[str]] = {name: [] for name in classes}
    for name, node in classes.items():
        for base in node.bases:
            base_name = base.id if isinstance(base, ast.Name) else None
            if base_name in children:
                children[base_name].append(name)
    result: Dict[str, ast.ClassDef] = {}
    frontier = list(children.get(root, []))
    while frontier:
        name = frontier.pop()
        if name in result:
            continue
        result[name] = classes[name]
        frontier.extend(children.get(name, []))
    return result


def own_methods(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Methods defined in the class's own body (not inherited)."""
    return {
        item.name: item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def string_tuple_assignment(tree: ast.Module, name: str) -> Optional[List[str]]:
    """The value of a module-level ``NAME = ("a", "b", ...)`` assignment."""
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(value, (ast.Tuple, ast.List)):
                    items = []
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            items.append(element.value)
                        else:
                            return None
                    return items
    return None


def imported_names_from(tree: ast.Module, module_suffix: str) -> Dict[str, str]:
    """Names bound by ``from <...module_suffix> import a, b as c``.

    Maps local binding -> original name, for imports whose source module
    path ends with ``module_suffix`` (e.g. ``"protocol"``).
    """
    bound: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == module_suffix or module.endswith("." + module_suffix):
                for alias in node.names:
                    bound[alias.asname or alias.name] = alias.name
    return bound
