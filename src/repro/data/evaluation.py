"""The evaluation schema and constraint set used for the paper's experiments.

Table 4.1 of the paper describes the evaluation databases as having **5
object classes** and **6 relationships**; each object class carried "an
average of 3 semantic constraints".  The paper does not print that exact
schema, so we use the connected 5-class core of the Figure 2.1 logistics
domain (supplier, cargo, vehicle, engine, driver) and add two further
relationships (``maintains`` and ``orders``) to reach the 6 relationships of
Table 4.1 — the extra links also give the schema graph cycles, which is what
produces enough distinct paths for a 40-query workload.

The physical design indexes the key-like attributes plus the attributes
that commonly appear as constraint consequents (cargo.desc, cargo.category,
vehicle.class, engine.capacity, driver.clearance) — index introduction, one
of the paper's three transformations, presupposes indexes on the attributes
the semantic rules talk about.

The 15 evaluation constraints (3 per class on average) are in the same
spirit as Figure 2.2: intra-class functional facts and inter-class rules
along the relationships.  They are co-designed with
:mod:`repro.data.generator`, which *enforces* them on the synthetic data so
that the optimizer's knowledge is actually true of the database (otherwise
the optimized queries could return different answers).
"""

from __future__ import annotations

from typing import Dict, List

from ..constraints.horn_clause import SemanticConstraint
from ..constraints.predicate import Predicate
from ..schema.attribute import DomainType, pointer_attribute, value_attribute
from ..schema.object_class import ObjectClass
from ..schema.relationship import Relationship
from ..schema.schema import Schema

# Categorical value pools shared by the schema, the generator and the
# constraints, so that constraint antecedents actually select real data.
VEHICLE_DESCS = ["refrigerated truck", "tanker", "flatbed", "van", "lorry"]
CARGO_DESCS = ["frozen food", "machinery", "textiles", "chemicals", "produce"]
CARGO_CATEGORIES = ["perishable", "bulk", "liquid", "hazardous", "general"]
SUPPLIER_REGIONS = ["north", "south", "east", "west", "central"]
SUPPLIER_NAMES = ["SFI", "Acme", "Globex", "Initech", "Umbrella", "Wayne"]
DRIVER_RANKS = ["senior", "junior", "trainee"]
DRIVER_CLEARANCES = ["top secret", "secret", "confidential", "open"]
ENGINE_FUELS = ["diesel", "petrol", "electric", "hybrid"]


def build_evaluation_schema(name: str = "evaluation") -> Schema:
    """The 5-class / 6-relationship evaluation schema."""
    supplier = ObjectClass(
        name="supplier",
        attributes=(
            value_attribute("name", DomainType.STRING, indexed=True),
            value_attribute("address", DomainType.STRING),
            value_attribute("region", DomainType.STRING),
            value_attribute("rating", DomainType.INTEGER),
            pointer_attribute("supplies", target_class="cargo"),
            pointer_attribute("orders", target_class="vehicle"),
        ),
        description="Companies supplying cargoes and ordering deliveries.",
    )
    cargo = ObjectClass(
        name="cargo",
        attributes=(
            value_attribute("code", DomainType.STRING, indexed=True),
            value_attribute("desc", DomainType.STRING, indexed=True),
            value_attribute("quantity", DomainType.INTEGER),
            value_attribute("category", DomainType.STRING, indexed=True),
            pointer_attribute("supplies", target_class="supplier"),
            pointer_attribute("collects", target_class="vehicle"),
        ),
        description="Goods supplied by suppliers and collected by vehicles.",
    )
    vehicle = ObjectClass(
        name="vehicle",
        attributes=(
            value_attribute("vehicle_no", DomainType.STRING, indexed=True),
            value_attribute("desc", DomainType.STRING, indexed=True),
            value_attribute("class", DomainType.INTEGER, indexed=True),
            value_attribute("capacity", DomainType.INTEGER),
            pointer_attribute("engComp", target_class="engine"),
            pointer_attribute("collects", target_class="cargo"),
            pointer_attribute("drives", target_class="driver"),
            pointer_attribute("orders", target_class="supplier"),
        ),
        description="Fleet vehicles classified 1 (light) to 5 (heavy).",
    )
    engine = ObjectClass(
        name="engine",
        attributes=(
            value_attribute("engine_no", DomainType.STRING, indexed=True),
            value_attribute("capacity", DomainType.INTEGER, indexed=True),
            value_attribute("fuel", DomainType.STRING),
            pointer_attribute("engComp", target_class="vehicle"),
            pointer_attribute("maintains", target_class="driver"),
        ),
        description="Engines installed in vehicles.",
    )
    driver = ObjectClass(
        name="driver",
        attributes=(
            value_attribute("name", DomainType.STRING, indexed=True),
            value_attribute("clearance", DomainType.STRING, indexed=True),
            value_attribute("rank", DomainType.STRING),
            value_attribute("licenseClass", DomainType.INTEGER),
            pointer_attribute("drives", target_class="vehicle"),
            pointer_attribute("maintains", target_class="engine"),
        ),
        description="Licensed drivers of the fleet.",
    )

    relationships = (
        Relationship("supplies", "supplier", "cargo", "supplies", "supplies"),
        Relationship("collects", "cargo", "vehicle", "collects", "collects"),
        Relationship("engComp", "vehicle", "engine", "engComp", "engComp"),
        Relationship("drives", "driver", "vehicle", "drives", "drives"),
        Relationship("maintains", "driver", "engine", "maintains", "maintains"),
        Relationship("orders", "supplier", "vehicle", "orders", "orders"),
    )
    return Schema(
        classes=[supplier, cargo, vehicle, engine, driver],
        relationships=relationships,
        name=name,
    )


def build_evaluation_constraints() -> List[SemanticConstraint]:
    """The 15 evaluation constraints (about 3 per object class)."""
    constraints = [
        # --- intra-class constraints -------------------------------------
        SemanticConstraint.build(
            "ec1",
            [Predicate.equals("cargo.category", "perishable")],
            Predicate.equals("cargo.desc", "frozen food"),
            anchor_classes={"cargo"},
            description="Perishable cargo is always frozen food.",
        ),
        SemanticConstraint.build(
            "ec2",
            [Predicate.equals("vehicle.desc", "tanker")],
            Predicate.selection("vehicle.capacity", ">=", 5000),
            anchor_classes={"vehicle"},
            description="Tankers carry at least 5000 units.",
        ),
        SemanticConstraint.build(
            "ec3",
            [Predicate.equals("driver.rank", "senior")],
            Predicate.equals("driver.clearance", "top secret"),
            anchor_classes={"driver"},
            description="Senior drivers hold top-secret clearance.",
        ),
        SemanticConstraint.build(
            "ec4",
            [Predicate.equals("engine.fuel", "diesel")],
            Predicate.selection("engine.capacity", ">=", 2000),
            anchor_classes={"engine"},
            description="Diesel engines displace at least 2000 cc.",
        ),
        SemanticConstraint.build(
            "ec5",
            [Predicate.equals("supplier.region", "west")],
            Predicate.selection("supplier.rating", ">=", 3),
            anchor_classes={"supplier"},
            description="Western suppliers are rated 3 or better.",
        ),
        # --- inter-class constraints -------------------------------------
        SemanticConstraint.build(
            "ec6",
            [Predicate.equals("vehicle.desc", "refrigerated truck")],
            Predicate.equals("cargo.desc", "frozen food"),
            anchor_classes={"cargo", "vehicle"},
            anchor_relationships={"collects"},
            description="Refrigerated trucks only collect frozen food.",
        ),
        SemanticConstraint.build(
            "ec7",
            [Predicate.equals("cargo.desc", "frozen food")],
            Predicate.equals("supplier.name", "SFI"),
            anchor_classes={"supplier", "cargo"},
            anchor_relationships={"supplies"},
            description="Frozen food comes only from SFI.",
        ),
        SemanticConstraint.build(
            "ec8",
            [Predicate.equals("cargo.category", "hazardous")],
            Predicate.equals("driver.clearance", "top secret"),
            anchor_classes={"cargo", "vehicle", "driver"},
            anchor_relationships={"collects", "drives"},
            description="Hazardous cargo is moved only by cleared drivers.",
        ),
        SemanticConstraint.build(
            "ec9",
            [Predicate.selection("vehicle.class", ">=", 4)],
            Predicate.selection("engine.capacity", ">=", 3000),
            anchor_classes={"vehicle", "engine"},
            anchor_relationships={"engComp"},
            description="Heavy vehicles have large engines.",
        ),
        SemanticConstraint.build(
            "ec10",
            [],
            Predicate.comparison("driver.licenseClass", ">=", "vehicle.class"),
            anchor_classes={"driver", "vehicle"},
            anchor_relationships={"drives"},
            description="Drivers only drive vehicles within their license class.",
        ),
        SemanticConstraint.build(
            "ec11",
            [Predicate.equals("engine.fuel", "electric")],
            Predicate.selection("vehicle.class", "<=", 2),
            anchor_classes={"vehicle", "engine"},
            anchor_relationships={"engComp"},
            description="Electric engines power only light vehicles.",
        ),
        SemanticConstraint.build(
            "ec12",
            [Predicate.equals("supplier.region", "north")],
            Predicate.selection("cargo.quantity", ">=", 50),
            anchor_classes={"supplier", "cargo"},
            anchor_relationships={"supplies"},
            description="Northern suppliers ship in lots of at least 50.",
        ),
        SemanticConstraint.build(
            "ec13",
            [Predicate.equals("vehicle.desc", "tanker")],
            Predicate.equals("cargo.category", "liquid"),
            anchor_classes={"cargo", "vehicle"},
            anchor_relationships={"collects"},
            description="Tankers only collect liquid cargo.",
        ),
        SemanticConstraint.build(
            "ec14",
            [Predicate.equals("driver.rank", "trainee")],
            Predicate.selection("vehicle.class", "<=", 2),
            anchor_classes={"driver", "vehicle"},
            anchor_relationships={"drives"},
            description="Trainees only drive light vehicles.",
        ),
        SemanticConstraint.build(
            "ec15",
            [Predicate.selection("supplier.rating", "<=", 2)],
            Predicate.selection("cargo.quantity", "<=", 100),
            anchor_classes={"supplier", "cargo"},
            anchor_relationships={"supplies"},
            description="Low-rated suppliers ship only small lots.",
        ),
    ]
    return constraints


def evaluation_constraints_by_name() -> Dict[str, SemanticConstraint]:
    """Map constraint name to constraint for the evaluation set."""
    return {c.name: c for c in build_evaluation_constraints()}
