"""Synthetic database generation for the Table 4.1 database instances.

Table 4.1 of the paper describes four database instances of growing size::

                              DB1   DB2   DB3   DB4
    # object classes            5     5     5     5
    avg. class cardinality     52   104   208   208
    # relationships             6     6     6     6
    avg. relationship card.    77   154   308   616

:class:`DatabaseGenerator` builds object stores with those shapes over the
evaluation schema (:func:`repro.data.evaluation.build_evaluation_schema`).
Because the semantic optimizer's correctness argument assumes the semantic
constraints actually hold in the database, generation ends with an
*enforcement pass* that repairs any binding violating a constraint (setting
equality consequents, clamping range consequents); the resulting store is
validated in the test suite with
:func:`repro.constraints.validation.validate_database`.

The generator also produces a *value catalog* — qualified attribute name to
the list of values present in the data — which the query workload generator
uses so that the selective predicates of the 40 test queries refer to values
that exist.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..constraints.horn_clause import SemanticConstraint
from ..constraints.predicate import ComparisonOperator, Predicate
from ..constraints.validation import enumerate_bindings
from ..engine.instance import ObjectInstance
from ..engine.storage import ObjectStore
from ..schema.attribute import DomainType
from ..schema.schema import Schema
from . import evaluation
from .distributions import identifier, sample_names, skewed_choice, uniform_int


@dataclass(frozen=True)
class DatabaseSpec:
    """Shape parameters of one synthetic database instance."""

    name: str
    class_cardinality: int
    relationship_cardinality: int

    def __post_init__(self) -> None:
        if self.class_cardinality < 1:
            raise ValueError("class_cardinality must be >= 1")
        if self.relationship_cardinality < 0:
            raise ValueError("relationship_cardinality must be >= 0")


#: The four database instances of Table 4.1.
TABLE_4_1_SPECS: Dict[str, DatabaseSpec] = {
    "DB1": DatabaseSpec("DB1", class_cardinality=52, relationship_cardinality=77),
    "DB2": DatabaseSpec("DB2", class_cardinality=104, relationship_cardinality=154),
    "DB3": DatabaseSpec("DB3", class_cardinality=208, relationship_cardinality=308),
    "DB4": DatabaseSpec("DB4", class_cardinality=208, relationship_cardinality=616),
}


@dataclass
class GeneratedDatabase:
    """A generated database instance plus its value catalog."""

    spec: DatabaseSpec
    schema: Schema
    store: ObjectStore
    value_catalog: Dict[str, List[Any]] = field(default_factory=dict)
    enforcement_passes: int = 0
    repaired_bindings: int = 0

    def summary(self) -> Dict[str, Any]:
        """Shape summary in the same terms as Table 4.1."""
        counts = self.store.counts()
        class_count = len(counts)
        avg_class_cardinality = (
            sum(counts.values()) / class_count if class_count else 0.0
        )
        link_counts = _relationship_cardinalities(self.schema, self.store)
        relationship_count = len(link_counts)
        avg_relationship_cardinality = (
            sum(link_counts.values()) / relationship_count
            if relationship_count
            else 0.0
        )
        return {
            "database": self.spec.name,
            "object_classes": class_count,
            "avg_class_cardinality": avg_class_cardinality,
            "relationships": relationship_count,
            "avg_relationship_cardinality": avg_relationship_cardinality,
        }


#: Environment variable disabling the generation replay cache (set to "0").
DB_CACHE_ENV_VAR = "REPRO_DB_CACHE"


@dataclass
class _CachedGeneration:
    """Post-enforcement snapshot of one generated database.

    ``rows`` holds ``(class_name, values)`` in per-class extent order —
    everything needed to rebuild an identical fresh store by plain
    re-insertion, skipping link creation and the (dominant) constraint
    enforcement fixpoint.
    """

    rows: List[Tuple[str, Dict[str, Any]]]
    catalog: Dict[str, List[Any]]
    enforcement_passes: int
    repaired_bindings: int


_GENERATION_CACHE: Dict[Tuple, _CachedGeneration] = {}
_GENERATION_LOCK = threading.Lock()


def _cache_enabled() -> bool:
    return os.environ.get(DB_CACHE_ENV_VAR, "1") != "0"


def clear_generation_cache() -> None:
    """Drop every cached generation snapshot (tests, memory pressure)."""
    with _GENERATION_LOCK:
        _GENERATION_CACHE.clear()


def _copy_values(values: Mapping[str, Any]) -> Dict[str, Any]:
    """Copy an attribute-value mapping, deep enough for pointer lists."""
    return {
        name: list(value) if isinstance(value, list) else value
        for name, value in values.items()
    }


def _relationship_cardinalities(schema: Schema, store: ObjectStore) -> Dict[str, int]:
    """Number of link instances per relationship (counted on the source side)."""
    result: Dict[str, int] = {}
    for relationship in schema.relationships():
        attribute = relationship.source_attribute
        count = 0
        for instance in store.instances(relationship.source):
            count += len(instance.pointer_oids(attribute))
        result[relationship.name] = count
    return result


class DatabaseGenerator:
    """Generates constraint-consistent synthetic databases."""

    def __init__(
        self,
        schema: Optional[Schema] = None,
        constraints: Optional[Sequence[SemanticConstraint]] = None,
        seed: int = 0,
        max_enforcement_passes: int = 6,
    ) -> None:
        self.schema = schema or evaluation.build_evaluation_schema()
        self.constraints = (
            list(constraints)
            if constraints is not None
            else evaluation.build_evaluation_constraints()
        )
        self.seed = seed
        self.max_enforcement_passes = max_enforcement_passes

    # ------------------------------------------------------------------
    # Value synthesis
    # ------------------------------------------------------------------
    def _values_for(self, class_name: str, index: int, rng: random.Random) -> Dict[str, Any]:
        """Synthesize the value attributes of one instance."""
        cls = self.schema.object_class(class_name)
        values: Dict[str, Any] = {}
        for attribute in cls.value_attributes:
            values[attribute.name] = self._value_for_attribute(
                class_name, attribute.name, attribute.domain, index, rng
            )
        return values

    def _value_for_attribute(
        self,
        class_name: str,
        attribute_name: str,
        domain: DomainType,
        index: int,
        rng: random.Random,
    ) -> Any:
        """Domain-aware value synthesis with evaluation-schema specialisations."""
        key = (class_name, attribute_name)
        if key == ("supplier", "name"):
            return sample_names(rng, evaluation.SUPPLIER_NAMES, 1)[0] if index else "SFI"
        if key == ("supplier", "region"):
            return skewed_choice(rng, evaluation.SUPPLIER_REGIONS, skew=0.7)
        if key == ("supplier", "rating"):
            return uniform_int(rng, 1, 5)
        if key == ("cargo", "desc"):
            return skewed_choice(rng, evaluation.CARGO_DESCS, skew=0.7)
        if key == ("cargo", "category"):
            return skewed_choice(rng, evaluation.CARGO_CATEGORIES, skew=0.7)
        if key == ("cargo", "quantity"):
            return uniform_int(rng, 10, 500)
        if key == ("vehicle", "desc"):
            return skewed_choice(rng, evaluation.VEHICLE_DESCS, skew=0.7)
        if key == ("vehicle", "class"):
            return uniform_int(rng, 1, 5)
        if key == ("vehicle", "capacity"):
            return uniform_int(rng, 1000, 9000)
        if key == ("engine", "fuel"):
            return skewed_choice(rng, evaluation.ENGINE_FUELS, skew=0.7)
        if key == ("engine", "capacity"):
            return uniform_int(rng, 1000, 5000)
        if key == ("driver", "rank"):
            return skewed_choice(rng, evaluation.DRIVER_RANKS, skew=0.5)
        if key == ("driver", "clearance"):
            return skewed_choice(rng, evaluation.DRIVER_CLEARANCES, skew=0.5)
        if key == ("driver", "licenseClass"):
            return uniform_int(rng, 1, 5)
        # Generic fallbacks keyed by domain type.
        if domain is DomainType.INTEGER:
            return uniform_int(rng, 1, 1000)
        if domain is DomainType.FLOAT:
            return round(rng.uniform(0.0, 1000.0), 2)
        prefix = f"{class_name[:2].upper()}"
        return identifier(rng, prefix)

    # ------------------------------------------------------------------
    # Link synthesis
    # ------------------------------------------------------------------
    def _create_links(
        self, store: ObjectStore, spec: DatabaseSpec, rng: random.Random
    ) -> None:
        """Create ``relationship_cardinality`` links per relationship.

        Every link is recorded on *both* sides (the paper's schema stores
        the relationship pointer on both classes); multi-valued pointers are
        lists of OIDs.
        """
        for relationship in self.schema.relationships():
            sources = store.instances(relationship.source)
            targets = store.instances(relationship.target)
            if not sources or not targets:
                continue
            links = set()
            wanted = spec.relationship_cardinality
            max_links = len(sources) * len(targets)
            wanted = min(wanted, max_links)
            # First give every instance on both sides at least one link
            # (total participation) — class elimination is only
            # answer-preserving when the dangling class joins totally, which
            # the paper's rule implicitly assumes — then add random extra
            # links until the requested relationship cardinality is reached.
            shuffled_targets = list(targets)
            rng.shuffle(shuffled_targets)
            for index, source in enumerate(sources):
                target = shuffled_targets[index % len(shuffled_targets)]
                links.add((source.oid, target.oid))
            shuffled_sources = list(sources)
            rng.shuffle(shuffled_sources)
            for index, target in enumerate(targets):
                if not any(oid == target.oid for _s, oid in links):
                    source = shuffled_sources[index % len(shuffled_sources)]
                    links.add((source.oid, target.oid))
            attempts = 0
            while len(links) < wanted and attempts < wanted * 20:
                attempts += 1
                source = rng.choice(sources)
                target = rng.choice(targets)
                links.add((source.oid, target.oid))
            for source_oid, target_oid in sorted(links):
                self._append_link(
                    store.get(relationship.source, source_oid),
                    relationship.source_attribute,
                    target_oid,
                )
                self._append_link(
                    store.get(relationship.target, target_oid),
                    relationship.target_attribute,
                    source_oid,
                )

    @staticmethod
    def _append_link(
        instance: Optional[ObjectInstance], attribute: str, oid: int
    ) -> None:
        if instance is None:
            return
        current = instance.values.get(attribute)
        if current is None:
            instance.values[attribute] = [oid]
        elif isinstance(current, list):
            if oid not in current:
                current.append(oid)
        else:
            if current != oid:
                instance.values[attribute] = [current, oid]

    # ------------------------------------------------------------------
    # Constraint enforcement
    # ------------------------------------------------------------------
    def _enforce_constraints(self, store: ObjectStore) -> Tuple[int, int]:
        """Repair constraint violations until a fixpoint (or pass limit).

        Returns ``(passes, repaired_bindings)``.
        """
        repaired_total = 0
        for pass_number in range(1, self.max_enforcement_passes + 1):
            repaired = 0
            for constraint in self.constraints:
                repaired += self._enforce_one(store, constraint)
            repaired_total += repaired
            if repaired == 0:
                return pass_number, repaired_total
        return self.max_enforcement_passes, repaired_total

    def _enforce_one(self, store: ObjectStore, constraint: SemanticConstraint) -> int:
        class_names = sorted(constraint.referenced_classes())
        repaired = 0
        for binding in enumerate_bindings(self.schema, store, class_names):
            values: Mapping[str, Mapping[str, Any]] = {
                name: instance.values for name, instance in binding.items()
            }
            if not all(p.evaluate(values) for p in constraint.antecedents):
                continue
            if constraint.consequent.evaluate(values):
                continue
            self._repair(binding, constraint.consequent)
            repaired += 1
        return repaired

    @staticmethod
    def _repair(binding: Mapping[str, ObjectInstance], consequent: Predicate) -> None:
        """Force ``consequent`` to hold for ``binding`` by adjusting the left side."""
        target = binding[consequent.left.class_name]
        attribute = consequent.left.attribute_name
        operator = consequent.operator
        if consequent.is_selection:
            value = consequent.constant
        else:
            other = binding[consequent.right.class_name]
            value = other.values.get(consequent.right.attribute_name)
        if value is None:
            return
        if operator is ComparisonOperator.EQ:
            target.values[attribute] = value
        elif operator in (ComparisonOperator.GE, ComparisonOperator.GT):
            bump = value if operator is ComparisonOperator.GE else value + 1
            current = target.values.get(attribute)
            if not isinstance(current, (int, float)) or current < bump:
                target.values[attribute] = bump
        elif operator in (ComparisonOperator.LE, ComparisonOperator.LT):
            cap = value if operator is ComparisonOperator.LE else value - 1
            current = target.values.get(attribute)
            if not isinstance(current, (int, float)) or current > cap:
                target.values[attribute] = cap
        else:  # NE: nudge the value away from the forbidden constant.
            current = target.values.get(attribute)
            if current == value:
                if isinstance(value, (int, float)):
                    target.values[attribute] = value + 1
                else:
                    target.values[attribute] = f"{value}-alt"

    # ------------------------------------------------------------------
    # Value catalog
    # ------------------------------------------------------------------
    def _build_catalog(
        self, store: ObjectStore, per_attribute: int = 12
    ) -> Dict[str, List[Any]]:
        catalog: Dict[str, List[Any]] = {}
        for cls in self.schema.classes():
            for attribute in cls.value_attributes:
                seen: List[Any] = []
                for instance in store.instances(cls.name):
                    value = instance.values.get(attribute.name)
                    if value is None or value in seen:
                        continue
                    seen.append(value)
                    if len(seen) >= per_attribute:
                        break
                if seen:
                    catalog[f"{cls.name}.{attribute.name}"] = seen
        return catalog

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def generate(
        self, spec: DatabaseSpec, shard_count: int = 1
    ) -> GeneratedDatabase:
        """Generate one database instance for ``spec``.

        ``shard_count`` selects the hash partitioning of the produced store
        (``1`` keeps the historical single-shard layout).  The generated
        *data* is independent of the sharding: OIDs come from one global
        sequence, so every shard count yields the same instances.

        Generation is deterministic in ``(schema, constraints, seed, spec)``
        and dominated by the constraint-enforcement fixpoint, so finished
        databases are kept in a process-wide replay cache: a repeat request
        re-inserts the cached post-enforcement rows into a *fresh* store
        (sub-millisecond) instead of re-running link creation and
        enforcement.  Every caller gets an independent store, so mutating a
        generated database never leaks into later generations.  Set
        ``REPRO_DB_CACHE=0`` to disable the cache.
        """
        key = self._cache_key(spec)
        if _cache_enabled():
            with _GENERATION_LOCK:
                cached = _GENERATION_CACHE.get(key)
            if cached is not None:
                return self._replay(spec, cached, shard_count)
        # Seeding with a string is deterministic (unlike hashing a tuple,
        # which varies with interpreter hash randomization).
        rng = random.Random(f"{self.seed}-{spec.name}")
        store = ObjectStore(self.schema, shard_count=shard_count)
        for class_name in self.schema.class_names():
            for index in range(spec.class_cardinality):
                store.insert(class_name, self._values_for(class_name, index, rng))
        self._create_links(store, spec, rng)
        passes, repaired = self._enforce_constraints(store)
        # Repairs bypass ObjectStore.update(), so rebuild index contents by
        # re-inserting the values through the index manager.
        store.rebuild_indexes()
        catalog = self._build_catalog(store)
        if _cache_enabled():
            snapshot = _CachedGeneration(
                rows=[
                    (class_name, _copy_values(instance.values))
                    for class_name in self.schema.class_names()
                    for instance in store.instances(class_name)
                ],
                catalog={name: list(values) for name, values in catalog.items()},
                enforcement_passes=passes,
                repaired_bindings=repaired,
            )
            with _GENERATION_LOCK:
                _GENERATION_CACHE[key] = snapshot
        return GeneratedDatabase(
            spec=spec,
            schema=self.schema,
            store=store,
            value_catalog=catalog,
            enforcement_passes=passes,
            repaired_bindings=repaired,
        )

    def _cache_key(self, spec: DatabaseSpec) -> Tuple:
        """Replay-cache identity: schema + constraints + seed + spec shape.

        The schema fingerprint covers everything generation branches on —
        attribute domains and pointer/indexed flags (``_values_for``) and
        the relationship topology (``_create_links``) — so two schemas
        that merely share class/attribute names never share cached rows.
        """
        schema_print = tuple(
            (
                cls.name,
                tuple(
                    (
                        attribute.name,
                        str(attribute.domain),
                        bool(attribute.is_pointer),
                        bool(attribute.indexed),
                    )
                    for attribute in cls.attributes
                ),
            )
            for cls in self.schema.classes()
        )
        relationship_print = tuple(
            sorted(
                (
                    relationship.name,
                    relationship.source,
                    relationship.target,
                    str(relationship.source_attribute),
                    str(relationship.target_attribute),
                )
                for relationship in self.schema.relationships()
            )
        )
        constraint_print = tuple(sorted(str(c) for c in self.constraints))
        return (
            schema_print,
            relationship_print,
            constraint_print,
            self.seed,
            self.max_enforcement_passes,
            spec.name,
            spec.class_cardinality,
            spec.relationship_cardinality,
        )

    def _replay(
        self, spec: DatabaseSpec, cached: "_CachedGeneration", shard_count: int
    ) -> GeneratedDatabase:
        """Rebuild a fresh store from cached post-enforcement rows.

        Rows are re-inserted in the original per-class extent order, so OID
        assignment, extent order and index bucket order all match the
        originally generated store exactly (the original's indexes were
        rebuilt in extent order after enforcement).
        """
        store = ObjectStore(self.schema, shard_count=shard_count)
        for class_name, values in cached.rows:
            store.insert(class_name, _copy_values(values))
        return GeneratedDatabase(
            spec=spec,
            schema=self.schema,
            store=store,
            value_catalog={
                name: list(values) for name, values in cached.catalog.items()
            },
            enforcement_passes=cached.enforcement_passes,
            repaired_bindings=cached.repaired_bindings,
        )

    def generate_all(
        self, specs: Optional[Mapping[str, DatabaseSpec]] = None
    ) -> Dict[str, GeneratedDatabase]:
        """Generate every Table 4.1 instance (or the given specs)."""
        specs = specs or TABLE_4_1_SPECS
        return {name: self.generate(spec) for name, spec in specs.items()}
