"""Value distributions used by the synthetic data generator.

Small, dependency-free helpers around :class:`random.Random` so that the
generator's choices are reproducible from a single seed and mildly skewed
(real attribute values are rarely uniform, and skew is what makes indexed
equality predicates selective).
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def zipf_weights(count: int, skew: float = 1.0) -> List[float]:
    """Zipf-like weights ``1/rank**skew`` for ``count`` categories."""
    if count < 1:
        raise ValueError("count must be >= 1")
    weights = [1.0 / ((rank + 1) ** skew) for rank in range(count)]
    total = sum(weights)
    return [w / total for w in weights]


def skewed_choice(
    rng: random.Random, values: Sequence[T], skew: float = 1.0
) -> T:
    """Pick a value with Zipf-like skew toward the front of ``values``."""
    if not values:
        raise ValueError("values must be non-empty")
    weights = zipf_weights(len(values), skew)
    return rng.choices(list(values), weights=weights, k=1)[0]


def uniform_int(rng: random.Random, low: int, high: int) -> int:
    """A uniform integer in ``[low, high]``."""
    if low > high:
        raise ValueError("low must be <= high")
    return rng.randint(low, high)


def identifier(rng: random.Random, prefix: str, width: int = 5) -> str:
    """A synthetic identifier such as ``VH01234``."""
    return f"{prefix}{rng.randrange(10 ** width):0{width}d}"


def sample_names(rng: random.Random, base_names: Sequence[str], count: int) -> List[str]:
    """``count`` names drawn from ``base_names`` with numeric suffixes when needed.

    The first ``len(base_names)`` results are the base names themselves (so
    that constraint constants such as ``"SFI"`` are guaranteed to exist in
    the data); further names get a numeric suffix.
    """
    names: List[str] = []
    for index in range(count):
        base = base_names[index % len(base_names)]
        if index < len(base_names):
            names.append(base)
        else:
            names.append(f"{base}-{index}")
    rng.shuffle(names)
    return names
