"""Workload construction for the evaluation.

Bundles together everything one experiment run needs: the evaluation schema
and constraints, a generated database instance, a precompiled constraint
repository whose grouping has been warmed with access statistics, and the
40-query workload produced by the paper's path-enumeration procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..constraints.groups import GroupingPolicy
from ..constraints.horn_clause import SemanticConstraint
from ..constraints.repository import ConstraintRepository
from ..engine.cost_model import CostModel, CostWeights
from ..engine.statistics import DatabaseStatistics
from ..query.generator import GeneratorConfig, QueryGenerator
from ..query.query import Query
from ..schema.schema import Schema
from ..schema.statistics import AccessStatistics
from . import evaluation
from .generator import (
    TABLE_4_1_SPECS,
    DatabaseGenerator,
    DatabaseSpec,
    GeneratedDatabase,
)


@dataclass
class EvaluationSetup:
    """All the moving parts of one evaluation run, wired together."""

    schema: Schema
    constraints: List[SemanticConstraint]
    database: GeneratedDatabase
    repository: ConstraintRepository
    statistics: DatabaseStatistics
    cost_model: CostModel
    queries: List[Query] = field(default_factory=list)

    @property
    def store(self):
        """The generated object store."""
        return self.database.store


def constraint_selection_pool(
    constraints: Sequence[SemanticConstraint],
) -> Dict[str, List]:
    """Selective predicates appearing in constraints, grouped by class.

    The query generator biases workload predicates toward this pool so that
    the semantic constraints actually become applicable to the workload —
    mirroring the paper's setting, where the constraints describe the same
    application domain the test queries are drawn from.
    """
    pool: Dict[str, List] = {}
    for constraint in constraints:
        for predicate in constraint.predicates():
            if not predicate.is_selection:
                continue
            pool.setdefault(predicate.left.class_name, [])
            if predicate not in pool[predicate.left.class_name]:
                pool[predicate.left.class_name].append(predicate)
    return pool


def build_workload(
    schema: Schema,
    value_catalog,
    count: int = 40,
    seed: int = 7,
    config: Optional[GeneratorConfig] = None,
    constraints: Optional[Sequence[SemanticConstraint]] = None,
) -> List[Query]:
    """The paper's workload: ``count`` randomly chosen path queries."""
    preferred = constraint_selection_pool(constraints) if constraints else None
    generator = QueryGenerator(
        schema,
        value_catalog=value_catalog,
        config=config,
        seed=seed,
        preferred_predicates=preferred,
    )
    return generator.generate_workload(count=count)


def build_evaluation_setup(
    spec: DatabaseSpec = TABLE_4_1_SPECS["DB1"],
    query_count: int = 40,
    seed: int = 7,
    grouping_policy: GroupingPolicy = GroupingPolicy.LEAST_FREQUENT,
    constraints: Optional[Sequence[SemanticConstraint]] = None,
    generator_config: Optional[GeneratorConfig] = None,
    shard_count: int = 1,
) -> EvaluationSetup:
    """Build the full evaluation setup for one database instance.

    Parameters
    ----------
    spec:
        Which Table 4.1 database instance to generate.
    query_count:
        Number of workload queries (the paper uses 40).
    seed:
        Seed shared by the data generator and the query generator.
    grouping_policy:
        Constraint grouping policy for the repository.
    constraints:
        Override the evaluation constraint set (defaults to the 15
        constraints of :mod:`repro.data.evaluation`).
    generator_config:
        Override the query-generator configuration.
    shard_count:
        Hash-partition the generated store into this many shards (the
        parallel execution path runs one pipeline per shard).  The data is
        identical for every shard count.
    """
    schema = evaluation.build_evaluation_schema()
    constraint_list = (
        list(constraints)
        if constraints is not None
        else evaluation.build_evaluation_constraints()
    )
    database = DatabaseGenerator(schema, constraint_list, seed=seed).generate(
        spec, shard_count=shard_count
    )

    queries = build_workload(
        schema,
        database.value_catalog,
        count=query_count,
        seed=seed,
        config=generator_config,
        constraints=constraint_list,
    )

    # Warm the access statistics with the workload's class usage, so that
    # the least-frequently-accessed grouping policy has something to go on.
    access = AccessStatistics()
    for query in queries:
        access.record_query(query.classes)

    repository = ConstraintRepository(
        schema, policy=grouping_policy, statistics=access
    )
    repository.add_all(constraint_list)
    repository.precompile()

    statistics = DatabaseStatistics.collect(schema, database.store)
    cost_model = CostModel(schema, statistics, CostWeights())

    return EvaluationSetup(
        schema=schema,
        constraints=constraint_list,
        database=database,
        repository=repository,
        statistics=statistics,
        cost_model=cost_model,
        queries=queries,
    )


def build_all_setups(
    specs: Optional[Dict[str, DatabaseSpec]] = None,
    query_count: int = 40,
    seed: int = 7,
) -> Dict[str, EvaluationSetup]:
    """Build the evaluation setup for every Table 4.1 database instance."""
    specs = specs or TABLE_4_1_SPECS
    return {
        name: build_evaluation_setup(spec, query_count=query_count, seed=seed)
        for name, spec in specs.items()
    }
