"""Synthetic data substrate.

The evaluation schema and constraint set, value distributions, the
constraint-consistent database generator reproducing the Table 4.1 database
instances, and the workload/setup builders used by every experiment.
"""

from .distributions import (
    identifier,
    sample_names,
    skewed_choice,
    uniform_int,
    zipf_weights,
)
from .evaluation import (
    CARGO_CATEGORIES,
    CARGO_DESCS,
    DRIVER_CLEARANCES,
    DRIVER_RANKS,
    ENGINE_FUELS,
    SUPPLIER_NAMES,
    SUPPLIER_REGIONS,
    VEHICLE_DESCS,
    build_evaluation_constraints,
    build_evaluation_schema,
    evaluation_constraints_by_name,
)
from .generator import (
    TABLE_4_1_SPECS,
    DatabaseGenerator,
    DatabaseSpec,
    GeneratedDatabase,
)
from .workload import (
    EvaluationSetup,
    build_all_setups,
    build_evaluation_setup,
    build_workload,
)

__all__ = [
    "CARGO_CATEGORIES",
    "CARGO_DESCS",
    "DRIVER_CLEARANCES",
    "DRIVER_RANKS",
    "DatabaseGenerator",
    "DatabaseSpec",
    "ENGINE_FUELS",
    "EvaluationSetup",
    "GeneratedDatabase",
    "SUPPLIER_NAMES",
    "SUPPLIER_REGIONS",
    "TABLE_4_1_SPECS",
    "VEHICLE_DESCS",
    "build_all_setups",
    "build_evaluation_constraints",
    "build_evaluation_schema",
    "build_evaluation_setup",
    "build_workload",
    "evaluation_constraints_by_name",
    "identifier",
    "sample_names",
    "skewed_choice",
    "uniform_int",
    "zipf_weights",
]
