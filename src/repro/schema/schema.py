"""The database schema: object classes plus relationships.

A :class:`Schema` owns a set of :class:`~repro.schema.object_class.ObjectClass`
definitions and the :class:`~repro.schema.relationship.Relationship` links
between them.  It resolves inheritance (so that ``driver`` exposes the
attributes it inherits from ``employee``), validates pointer attributes
against relationships, and offers the graph-level lookups needed by the query
generator, the constraint repository and the execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .attribute import Attribute
from .object_class import ObjectClass, SchemaError
from .relationship import Relationship


@dataclass(frozen=True)
class AttributeRef:
    """A fully resolved reference to ``class_name.attribute`` in a schema."""

    class_name: str
    attribute: Attribute

    @property
    def qualified_name(self) -> str:
        """``class.attribute`` notation used by predicates."""
        return f"{self.class_name}.{self.attribute.name}"


class Schema:
    """A collection of object classes and the relationships linking them."""

    def __init__(
        self,
        classes: Sequence[ObjectClass],
        relationships: Sequence[Relationship] = (),
        name: str = "schema",
    ) -> None:
        self.name = name
        self._declared: Dict[str, ObjectClass] = {}
        for cls in classes:
            if cls.name in self._declared:
                raise SchemaError(f"duplicate object class {cls.name!r}")
            self._declared[cls.name] = cls

        self._classes: Dict[str, ObjectClass] = {}
        for cls in classes:
            self._classes[cls.name] = self._resolve_inheritance(cls)

        self._relationships: Dict[str, Relationship] = {}
        for rel in relationships:
            if rel.name in self._relationships:
                raise SchemaError(f"duplicate relationship {rel.name!r}")
            self._validate_relationship(rel)
            self._relationships[rel.name] = rel

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _resolve_inheritance(self, cls: ObjectClass) -> ObjectClass:
        """Merge inherited attributes into ``cls`` (parents first)."""
        chain: List[ObjectClass] = []
        current: Optional[ObjectClass] = cls
        visited = set()
        while current is not None and current.parent is not None:
            if current.parent in visited or current.parent == current.name:
                raise SchemaError(
                    f"inheritance cycle detected at class {current.name!r}"
                )
            visited.add(current.parent)
            parent = self._declared.get(current.parent)
            if parent is None:
                raise SchemaError(
                    f"class {current.name!r} inherits from unknown class "
                    f"{current.parent!r}"
                )
            chain.append(parent)
            current = parent
        resolved = cls
        for parent in chain:
            resolved = resolved.with_attributes(parent.attributes)
        return resolved

    def _validate_relationship(self, rel: Relationship) -> None:
        """Ensure both ends of ``rel`` exist and use pointer attributes."""
        for class_name, attr_name in (
            (rel.source, rel.source_attribute),
            (rel.target, rel.target_attribute),
        ):
            cls = self._classes.get(class_name)
            if cls is None:
                raise SchemaError(
                    f"relationship {rel.name!r} references unknown class "
                    f"{class_name!r}"
                )
            if not cls.has_attribute(attr_name):
                raise SchemaError(
                    f"relationship {rel.name!r} references unknown attribute "
                    f"{class_name}.{attr_name}"
                )
            if not cls.attribute(attr_name).is_pointer:
                raise SchemaError(
                    f"relationship {rel.name!r} must use pointer attributes; "
                    f"{class_name}.{attr_name} is a value attribute"
                )

    # ------------------------------------------------------------------
    # Class access
    # ------------------------------------------------------------------
    def class_names(self) -> List[str]:
        """All class names in declaration order."""
        return list(self._classes)

    def classes(self) -> List[ObjectClass]:
        """All (inheritance-resolved) object classes."""
        return list(self._classes.values())

    def has_class(self, name: str) -> bool:
        """Whether a class named ``name`` exists."""
        return name in self._classes

    def object_class(self, name: str) -> ObjectClass:
        """Return the resolved class ``name`` or raise :class:`SchemaError`."""
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown object class {name!r}") from None

    def attribute(self, class_name: str, attribute_name: str) -> Attribute:
        """Return the attribute ``class_name.attribute_name``."""
        return self.object_class(class_name).attribute(attribute_name)

    def resolve(self, qualified_name: str) -> AttributeRef:
        """Resolve ``class.attribute`` notation into an :class:`AttributeRef`."""
        if "." not in qualified_name:
            raise SchemaError(
                f"expected 'class.attribute' notation, got {qualified_name!r}"
            )
        class_name, attribute_name = qualified_name.split(".", 1)
        return AttributeRef(class_name, self.attribute(class_name, attribute_name))

    def is_indexed(self, class_name: str, attribute_name: str) -> bool:
        """Whether ``class_name.attribute_name`` has an index."""
        return self.attribute(class_name, attribute_name).indexed

    # ------------------------------------------------------------------
    # Relationship access
    # ------------------------------------------------------------------
    def relationship_names(self) -> List[str]:
        """All relationship names in declaration order."""
        return list(self._relationships)

    def relationships(self) -> List[Relationship]:
        """All relationships."""
        return list(self._relationships.values())

    def has_relationship(self, name: str) -> bool:
        """Whether a relationship named ``name`` exists."""
        return name in self._relationships

    def relationship(self, name: str) -> Relationship:
        """Return the relationship ``name`` or raise :class:`SchemaError`."""
        try:
            return self._relationships[name]
        except KeyError:
            raise SchemaError(f"unknown relationship {name!r}") from None

    def relationships_of(self, class_name: str) -> List[Relationship]:
        """All relationships in which ``class_name`` participates."""
        self.object_class(class_name)
        return [
            rel for rel in self._relationships.values() if rel.involves(class_name)
        ]

    def relationship_between(
        self, class_a: str, class_b: str
    ) -> Optional[Relationship]:
        """The relationship connecting two classes, or ``None``."""
        for rel in self._relationships.values():
            if rel.connects(class_a, class_b):
                return rel
        return None

    def neighbours(self, class_name: str) -> List[str]:
        """Class names directly connected to ``class_name`` by a relationship."""
        return sorted(
            {rel.other(class_name) for rel in self.relationships_of(class_name)}
        )

    # ------------------------------------------------------------------
    # Graph-level views
    # ------------------------------------------------------------------
    def adjacency(self) -> Dict[str, List[Tuple[str, str]]]:
        """Adjacency map: class -> list of (relationship name, other class)."""
        adj: Dict[str, List[Tuple[str, str]]] = {
            name: [] for name in self._classes
        }
        for rel in self._relationships.values():
            adj[rel.source].append((rel.name, rel.target))
            adj[rel.target].append((rel.name, rel.source))
        for entries in adj.values():
            entries.sort()
        return adj

    def subclasses_of(self, class_name: str) -> List[str]:
        """Names of classes that (transitively) inherit from ``class_name``."""
        result = []
        for cls in self._declared.values():
            current = cls
            while current.parent is not None:
                if current.parent == class_name:
                    result.append(cls.name)
                    break
                current = self._declared[current.parent]
        return sorted(result)

    def validate_qualified_names(self, names: Iterable[str]) -> None:
        """Check every ``class.attribute`` name in ``names`` resolves."""
        for name in names:
            self.resolve(name)

    def __contains__(self, class_name: str) -> bool:
        return class_name in self._classes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schema({self.name!r}, classes={len(self._classes)}, "
            f"relationships={len(self._relationships)})"
        )
