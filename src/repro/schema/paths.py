"""Schema path enumeration.

Section 4 of the paper generates its query workload by identifying *"all
possible paths in this schema ... where a path consists of a series of
interconnecting object classes and relationships, and no object class or
relationship appears more than once"*, and then formulating one query per
path.  :func:`enumerate_paths` implements exactly that definition as a simple
DFS over the schema graph; :class:`SchemaPath` is the resulting value object
consumed by :mod:`repro.query.generator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from .schema import Schema


@dataclass(frozen=True)
class SchemaPath:
    """A simple path through the schema graph.

    ``classes`` holds the sequence of object-class names visited and
    ``relationships`` the names of the relationships traversed between
    consecutive classes; ``len(relationships) == len(classes) - 1``.
    """

    classes: Tuple[str, ...]
    relationships: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a schema path must contain at least one class")
        if len(self.relationships) != len(self.classes) - 1:
            raise ValueError(
                "a path over k classes must traverse exactly k-1 relationships"
            )

    @property
    def length(self) -> int:
        """Number of classes on the path."""
        return len(self.classes)

    @property
    def start(self) -> str:
        """First class on the path."""
        return self.classes[0]

    @property
    def end(self) -> str:
        """Last class on the path."""
        return self.classes[-1]

    def reversed(self) -> "SchemaPath":
        """The same path walked in the opposite direction."""
        return SchemaPath(
            classes=tuple(reversed(self.classes)),
            relationships=tuple(reversed(self.relationships)),
        )

    def canonical(self) -> "SchemaPath":
        """A direction-independent representative of this path.

        The paper treats a path and its reverse as the same path; the
        canonical form is whichever direction is lexicographically smaller,
        so de-duplication is a simple set membership test.
        """
        forward = (self.classes, self.relationships)
        rev = self.reversed()
        backward = (rev.classes, rev.relationships)
        return self if forward <= backward else rev

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.classes[0]]
        for rel, cls in zip(self.relationships, self.classes[1:]):
            parts.append(f"-[{rel}]-")
            parts.append(cls)
        return " ".join(parts)


def _extend(
    schema: Schema,
    classes: List[str],
    relationships: List[str],
    max_length: Optional[int],
) -> Iterator[SchemaPath]:
    """DFS helper yielding every extension of the current partial path."""
    yield SchemaPath(tuple(classes), tuple(relationships))
    if max_length is not None and len(classes) >= max_length:
        return
    current = classes[-1]
    for rel in schema.relationships_of(current):
        nxt = rel.other(current)
        if nxt in classes or rel.name in relationships:
            continue
        classes.append(nxt)
        relationships.append(rel.name)
        yield from _extend(schema, classes, relationships, max_length)
        classes.pop()
        relationships.pop()


def enumerate_paths(
    schema: Schema,
    min_length: int = 1,
    max_length: Optional[int] = None,
    deduplicate: bool = True,
) -> List[SchemaPath]:
    """Enumerate all simple paths of the schema graph.

    Parameters
    ----------
    schema:
        The schema whose relationship graph is walked.
    min_length:
        Minimum number of classes in a path (1 returns single-class paths
        too, which correspond to single-class queries).
    max_length:
        Optional cap on the number of classes per path.
    deduplicate:
        When ``True`` (the default, matching the paper), a path and its
        reverse count as one path and only the canonical direction is
        returned.

    Returns
    -------
    list of :class:`SchemaPath`
        Sorted by (length, class sequence) for reproducibility.
    """
    if min_length < 1:
        raise ValueError("min_length must be >= 1")
    if max_length is not None and max_length < min_length:
        raise ValueError("max_length must be >= min_length")

    seen = set()
    results: List[SchemaPath] = []
    for start in schema.class_names():
        for path in _extend(schema, [start], [], max_length):
            if path.length < min_length:
                continue
            candidate = path.canonical() if deduplicate else path
            key = (candidate.classes, candidate.relationships)
            if key in seen:
                continue
            seen.add(key)
            results.append(candidate)
    results.sort(key=lambda p: (p.length, p.classes, p.relationships))
    return results


def paths_through(
    paths: Sequence[SchemaPath], class_name: str
) -> List[SchemaPath]:
    """Filter ``paths`` down to those visiting ``class_name``."""
    return [p for p in paths if class_name in p.classes]


def longest_paths(paths: Sequence[SchemaPath]) -> List[SchemaPath]:
    """Return the subset of ``paths`` with maximal length."""
    if not paths:
        return []
    best = max(p.length for p in paths)
    return [p for p in paths if p.length == best]
