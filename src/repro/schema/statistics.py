"""Access-frequency statistics over object classes.

Section 3 of the paper refines the constraint grouping scheme by assigning
each constraint to *"the group attached to the less frequently accessed
classes that appear in the constraint"*.  That requires the system to track
how often each object class is touched by queries.  :class:`AccessStatistics`
is that tracker; it is deliberately tiny but supports the three grouping
strategies implemented in :mod:`repro.constraints.groups`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional


class AccessStatistics:
    """Counts how frequently each object class is referenced by queries.

    The counter can be seeded with an initial frequency map (useful for
    experiments that want a fixed, skewed access pattern) and is updated by
    calling :meth:`record_query` with the classes a query touches.
    """

    def __init__(self, initial: Optional[Mapping[str, int]] = None) -> None:
        self._counts: Counter = Counter()
        self._queries_seen = 0
        if initial:
            for class_name, count in initial.items():
                if count < 0:
                    raise ValueError(
                        f"access count for {class_name!r} must be >= 0"
                    )
                self._counts[class_name] = int(count)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_query(self, class_names: Iterable[str]) -> None:
        """Record one query touching each class in ``class_names`` once."""
        touched = set(class_names)
        for name in touched:
            self._counts[name] += 1
        self._queries_seen += 1

    def record_access(self, class_name: str, count: int = 1) -> None:
        """Record ``count`` additional accesses to a single class."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._counts[class_name] += count

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def queries_seen(self) -> int:
        """Number of queries recorded via :meth:`record_query`."""
        return self._queries_seen

    def frequency(self, class_name: str) -> int:
        """Access count for ``class_name`` (0 if never seen)."""
        return self._counts.get(class_name, 0)

    def frequencies(self) -> Dict[str, int]:
        """A copy of the full frequency map."""
        return dict(self._counts)

    def least_frequent(self, class_names: Iterable[str]) -> str:
        """Return the least frequently accessed class among ``class_names``.

        Ties are broken alphabetically so that grouping is deterministic.

        Raises
        ------
        ValueError
            If ``class_names`` is empty.
        """
        names = sorted(set(class_names))
        if not names:
            raise ValueError("least_frequent() requires at least one class")
        return min(names, key=lambda name: (self.frequency(name), name))

    def most_frequent(self, class_names: Iterable[str]) -> str:
        """Return the most frequently accessed class among ``class_names``."""
        names = sorted(set(class_names))
        if not names:
            raise ValueError("most_frequent() requires at least one class")
        return max(names, key=lambda name: (self.frequency(name), name))

    def ranked(self) -> List[str]:
        """All known classes ordered from most to least frequently accessed."""
        return [
            name
            for name, _count in sorted(
                self._counts.items(), key=lambda item: (-item[1], item[0])
            )
        ]

    def merge(self, other: "AccessStatistics") -> "AccessStatistics":
        """Return a new statistics object combining both counters."""
        merged = AccessStatistics(self._counts)
        for name, count in other.frequencies().items():
            merged.record_access(name, count)
        merged._queries_seen = self._queries_seen + other._queries_seen
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AccessStatistics({dict(self._counts)!r})"
