"""Object-oriented database schema substrate.

This package models the schema layer of the OODB the paper's prototype was
built for: object classes with value and pointer attributes, binary
relationships implemented through those pointers, class inheritance,
access-frequency statistics, and enumeration of simple paths through the
schema graph (used by the workload generator).
"""

from .attribute import (
    Attribute,
    AttributeKind,
    DomainType,
    pointer_attribute,
    value_attribute,
)
from .object_class import ObjectClass, SchemaError
from .relationship import Relationship
from .schema import AttributeRef, Schema
from .paths import SchemaPath, enumerate_paths, longest_paths, paths_through
from .statistics import AccessStatistics
from .example import (
    ENGINE_NUMBER,
    LICENSE_NUMBER,
    VEHICLE_NUMBER,
    build_core_example_schema,
    build_example_schema,
)

__all__ = [
    "Attribute",
    "AttributeKind",
    "AttributeRef",
    "AccessStatistics",
    "DomainType",
    "ObjectClass",
    "Relationship",
    "Schema",
    "SchemaError",
    "SchemaPath",
    "ENGINE_NUMBER",
    "LICENSE_NUMBER",
    "VEHICLE_NUMBER",
    "build_core_example_schema",
    "build_example_schema",
    "enumerate_paths",
    "longest_paths",
    "paths_through",
    "pointer_attribute",
    "value_attribute",
]
