"""Attribute definitions for object classes.

An attribute belongs to an object class and is either a *value attribute*
(holding a string, integer or float) or a *pointer attribute* used to
implement a relationship between object classes, exactly as in Figure 2.1 of
the paper where "attributes in italic are pointers used to implement
relationships between object classes".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class AttributeKind(enum.Enum):
    """Distinguishes plain value attributes from relationship pointers."""

    VALUE = "value"
    POINTER = "pointer"


class DomainType(enum.Enum):
    """The value domain of an attribute.

    The domain type drives predicate implication reasoning: numeric domains
    support range subsumption (``x > 20`` implies ``x > 10``) while string
    domains only support equality reasoning.
    """

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    OID = "oid"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this domain are ordered numbers."""
        return self in (DomainType.INTEGER, DomainType.FLOAT)


@dataclass(frozen=True)
class Attribute:
    """A single attribute of an object class.

    Parameters
    ----------
    name:
        Attribute name, unique within its owning class.
    domain:
        The value domain (:class:`DomainType`).
    kind:
        Whether this is a plain value attribute or a relationship pointer.
    indexed:
        ``True`` when the physical design maintains an index on this
        attribute.  Indexed-ness matters to the optimizer: consequent
        predicates on indexed attributes become *optional* rather than
        *redundant* (Table 3.1 / 3.2 of the paper).
    target_class:
        For pointer attributes, the name of the object class the pointer
        refers to.  ``None`` for value attributes.
    description:
        Optional human-readable documentation.
    """

    name: str
    domain: DomainType = DomainType.STRING
    kind: AttributeKind = AttributeKind.VALUE
    indexed: bool = False
    target_class: Optional[str] = None
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        if self.kind is AttributeKind.POINTER and self.target_class is None:
            raise ValueError(
                f"pointer attribute {self.name!r} must declare a target_class"
            )
        if self.kind is AttributeKind.VALUE and self.target_class is not None:
            raise ValueError(
                f"value attribute {self.name!r} must not declare a target_class"
            )

    @property
    def is_pointer(self) -> bool:
        """Whether this attribute implements a relationship."""
        return self.kind is AttributeKind.POINTER

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute with a different name.

        Used when sub-classes inherit attributes but need local overrides.
        """
        return Attribute(
            name=new_name,
            domain=self.domain,
            kind=self.kind,
            indexed=self.indexed,
            target_class=self.target_class,
            description=self.description,
        )

    def with_index(self, indexed: bool = True) -> "Attribute":
        """Return a copy of this attribute with ``indexed`` toggled."""
        return Attribute(
            name=self.name,
            domain=self.domain,
            kind=self.kind,
            indexed=indexed,
            target_class=self.target_class,
            description=self.description,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        marker = "*" if self.indexed else ""
        if self.is_pointer:
            return f"{self.name}{marker} -> {self.target_class}"
        return f"{self.name}{marker}: {self.domain.value}"


def value_attribute(
    name: str,
    domain: DomainType = DomainType.STRING,
    indexed: bool = False,
    description: str = "",
) -> Attribute:
    """Convenience constructor for a plain value attribute."""
    return Attribute(
        name=name,
        domain=domain,
        kind=AttributeKind.VALUE,
        indexed=indexed,
        description=description,
    )


def pointer_attribute(
    name: str,
    target_class: str,
    indexed: bool = False,
    description: str = "",
) -> Attribute:
    """Convenience constructor for a relationship pointer attribute."""
    return Attribute(
        name=name,
        domain=DomainType.OID,
        kind=AttributeKind.POINTER,
        indexed=indexed,
        target_class=target_class,
        description=description,
    )
