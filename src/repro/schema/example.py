"""The paper's example database schema (Figure 2.1).

The schema models a logistics company: suppliers supply cargoes, vehicles
collect cargoes, engines are components of vehicles, employees (with the
subclasses manager, driver and supervisor) belong to departments, and drivers
drive vehicles.

The attribute lists follow Figure 2.1 verbatim::

    supplier(name, address, supplies)
    cargo(code, desc, quantity, supplies, collects)
    vehicle(vehicle#, desc, class, engComp, collects, drives)
    engine(engine#, capacity, engComp)
    employee(name, clearance, rank, belongsTo)
    manager(name, clearance, rank, belongsTo)
    driver(name, clearance, rank, belongsTo, license#, licenseClass,
           licenseDate, drives)
    supervisor(name, clearance, rank, belongsTo, license#, licenseClass,
               licenseDate, drives)
    department(name, securityClass, belongsTo)

Attributes in italics in the paper are pointers implementing relationships;
we mark them as pointer attributes here.  A handful of attributes are flagged
as indexed — the paper does not list its physical design, so we index the
natural key-like attributes (names, codes, vehicle#) plus ``cargo.desc``,
which is the attribute the worked example's index-introduction benefits from.
"""

from __future__ import annotations

from .attribute import DomainType, pointer_attribute, value_attribute
from .object_class import ObjectClass
from .relationship import Relationship
from .schema import Schema

# Python identifiers for the paper's attribute names containing '#'.
VEHICLE_NUMBER = "vehicle_no"
ENGINE_NUMBER = "engine_no"
LICENSE_NUMBER = "license_no"


def build_example_schema(name: str = "logistics") -> Schema:
    """Build the Figure 2.1 schema.

    Returns a fully validated :class:`~repro.schema.schema.Schema` with the
    nine object classes and five relationships of the example database.
    """
    supplier = ObjectClass(
        name="supplier",
        attributes=(
            value_attribute("name", DomainType.STRING, indexed=True),
            value_attribute("address", DomainType.STRING),
            pointer_attribute("supplies", target_class="cargo"),
        ),
        description="Companies that supply cargoes.",
    )

    cargo = ObjectClass(
        name="cargo",
        attributes=(
            value_attribute("code", DomainType.STRING, indexed=True),
            value_attribute("desc", DomainType.STRING, indexed=True),
            value_attribute("quantity", DomainType.INTEGER),
            pointer_attribute("supplies", target_class="supplier"),
            pointer_attribute("collects", target_class="vehicle"),
        ),
        description="Goods supplied by suppliers and collected by vehicles.",
    )

    vehicle = ObjectClass(
        name="vehicle",
        attributes=(
            value_attribute(VEHICLE_NUMBER, DomainType.STRING, indexed=True),
            value_attribute("desc", DomainType.STRING),
            value_attribute("class", DomainType.INTEGER),
            pointer_attribute("engComp", target_class="engine"),
            pointer_attribute("collects", target_class="cargo"),
            pointer_attribute("drives", target_class="driver"),
        ),
        description="Vehicles of the fleet, classified by vehicle class.",
    )

    engine = ObjectClass(
        name="engine",
        attributes=(
            value_attribute(ENGINE_NUMBER, DomainType.STRING, indexed=True),
            value_attribute("capacity", DomainType.INTEGER),
            pointer_attribute("engComp", target_class="vehicle"),
        ),
        description="Engines that are components of vehicles.",
    )

    employee = ObjectClass(
        name="employee",
        attributes=(
            value_attribute("name", DomainType.STRING, indexed=True),
            value_attribute("clearance", DomainType.STRING),
            value_attribute("rank", DomainType.STRING),
            pointer_attribute("belongsTo", target_class="department"),
        ),
        description="All staff members of the company.",
    )

    manager = ObjectClass(
        name="manager",
        parent="employee",
        attributes=(),
        description="Employees appointed as managers.",
    )

    driver = ObjectClass(
        name="driver",
        parent="employee",
        attributes=(
            value_attribute(LICENSE_NUMBER, DomainType.STRING, indexed=True),
            value_attribute("licenseClass", DomainType.INTEGER),
            value_attribute("licenseDate", DomainType.STRING),
            pointer_attribute("drives", target_class="vehicle"),
        ),
        description="Employees licensed to drive vehicles.",
    )

    supervisor = ObjectClass(
        name="supervisor",
        parent="driver",
        attributes=(),
        description="Drivers who also supervise other drivers.",
    )

    department = ObjectClass(
        name="department",
        attributes=(
            value_attribute("name", DomainType.STRING, indexed=True),
            value_attribute("securityClass", DomainType.STRING),
            pointer_attribute("belongsTo", target_class="employee"),
        ),
        description="Departments employees belong to.",
    )

    relationships = (
        Relationship(
            name="supplies",
            source="supplier",
            target="cargo",
            source_attribute="supplies",
            target_attribute="supplies",
        ),
        Relationship(
            name="collects",
            source="cargo",
            target="vehicle",
            source_attribute="collects",
            target_attribute="collects",
        ),
        Relationship(
            name="engComp",
            source="vehicle",
            target="engine",
            source_attribute="engComp",
            target_attribute="engComp",
        ),
        Relationship(
            name="drives",
            source="driver",
            target="vehicle",
            source_attribute="drives",
            target_attribute="drives",
        ),
        Relationship(
            name="belongsTo",
            source="employee",
            target="department",
            source_attribute="belongsTo",
            target_attribute="belongsTo",
        ),
    )

    return Schema(
        classes=[
            supplier,
            cargo,
            vehicle,
            engine,
            employee,
            manager,
            driver,
            supervisor,
            department,
        ],
        relationships=relationships,
        name=name,
    )


def build_core_example_schema(name: str = "logistics-core") -> Schema:
    """Build the 5-class core of the example schema used in the evaluation.

    Table 4.1 of the paper lists database instances with **5 object classes**
    and 6 relationships cardinalities over them; the natural reading is that
    the evaluation used the connected core of Figure 2.1 reachable through
    the five relationships without the subclass duplicates.  This helper
    returns that core: supplier, cargo, vehicle, engine and driver (drivers
    stand in for the employee hierarchy because they participate in the
    ``drives`` relationship).
    """
    full = build_example_schema(name="scratch")
    core_classes = ["supplier", "cargo", "vehicle", "engine", "driver"]
    classes = []
    for class_name in core_classes:
        resolved = full.object_class(class_name)
        # Re-declare without a parent: attributes are already merged in.
        classes.append(
            ObjectClass(
                name=resolved.name,
                attributes=resolved.attributes,
                parent=None,
                description=resolved.description,
            )
        )
    relationships = [
        rel
        for rel in full.relationships()
        if rel.source in core_classes and rel.target in core_classes
    ]
    return Schema(classes=classes, relationships=relationships, name=name)
