"""Object class definitions.

An :class:`ObjectClass` corresponds to one row of Figure 2.1 in the paper,
e.g. ``vehicle(vehicle#, desc, class, engComp, collects, drives)``.  Classes
may inherit from a parent class (``driver`` and ``supervisor`` extend
``employee`` in the example schema); inherited attributes are merged into the
subclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .attribute import Attribute


class SchemaError(Exception):
    """Raised when a schema definition is inconsistent."""


@dataclass
class ObjectClass:
    """A class of objects in the object-oriented database.

    Parameters
    ----------
    name:
        Class name, unique within the schema.
    attributes:
        The attributes declared directly on this class (not inherited).
    parent:
        Optional name of the parent class; inherited attributes are resolved
        by :class:`repro.schema.schema.Schema`.
    description:
        Optional human readable documentation.
    """

    name: str
    attributes: Tuple[Attribute, ...] = ()
    parent: Optional[str] = None
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("object class name must be non-empty")
        self.attributes = tuple(self.attributes)
        seen = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in class {self.name!r}"
                )
            seen.add(attr.name)
        self._by_name: Dict[str, Attribute] = {a.name: a for a in self.attributes}

    # ------------------------------------------------------------------
    # Attribute access
    # ------------------------------------------------------------------
    def has_attribute(self, name: str) -> bool:
        """Whether the class *directly* declares an attribute ``name``."""
        return name in self._by_name

    def attribute(self, name: str) -> Attribute:
        """Return the directly declared attribute ``name``.

        Raises
        ------
        SchemaError
            If the attribute does not exist on this class.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"class {self.name!r} has no attribute {name!r}"
            ) from None

    def attribute_names(self) -> List[str]:
        """Names of directly declared attributes, in declaration order."""
        return [a.name for a in self.attributes]

    @property
    def value_attributes(self) -> List[Attribute]:
        """Directly declared non-pointer attributes."""
        return [a for a in self.attributes if not a.is_pointer]

    @property
    def pointer_attributes(self) -> List[Attribute]:
        """Directly declared pointer attributes."""
        return [a for a in self.attributes if a.is_pointer]

    @property
    def indexed_attributes(self) -> List[Attribute]:
        """Directly declared attributes that carry an index."""
        return [a for a in self.attributes if a.indexed]

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def with_attributes(self, extra: Iterable[Attribute]) -> "ObjectClass":
        """Return a copy of this class with additional attributes appended.

        Used by the schema to materialize inherited attributes; attributes
        already present by name are *not* overridden (the subclass wins).
        """
        merged: List[Attribute] = list(self.attributes)
        names = {a.name for a in merged}
        for attr in extra:
            if attr.name not in names:
                merged.append(attr)
                names.add(attr.name)
        return ObjectClass(
            name=self.name,
            attributes=tuple(merged),
            parent=self.parent,
            description=self.description,
        )

    def qualified(self, attribute_name: str) -> str:
        """Return the ``class.attribute`` qualified name used in predicates."""
        if attribute_name not in self._by_name:
            raise SchemaError(
                f"class {self.name!r} has no attribute {attribute_name!r}"
            )
        return f"{self.name}.{attribute_name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(a.name for a in self.attributes)
        return f"{self.name}({attrs})"
