"""Relationships between object classes.

In the paper's schema (Figure 2.1) relationships such as ``collects`` and
``supplies`` are implemented by pointer attributes shared between the two
participating classes.  A :class:`Relationship` names the link, identifies the
two classes and the pointer attribute each side uses, so that the query
executor can traverse it in either direction and the query generator can
enumerate schema paths over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .object_class import SchemaError


@dataclass(frozen=True)
class Relationship:
    """A named, binary relationship between two object classes.

    Parameters
    ----------
    name:
        Relationship name (e.g. ``collects``), unique within the schema.
    source:
        Name of the class on the "owning" side of the relationship.
    target:
        Name of the class on the other side.
    source_attribute:
        Pointer attribute on ``source`` implementing the link.
    target_attribute:
        Pointer attribute on ``target`` implementing the link.  The paper's
        example stores the same relationship pointer on both sides (e.g.
        ``collects`` appears on both ``cargo`` and ``vehicle``); storing both
        attribute names lets the executor traverse either direction without
        scanning.
    cardinality:
        Approximate number of link instances; only used as a default by the
        data generator and cost model when no statistics are available.
    """

    name: str
    source: str
    target: str
    source_attribute: str
    target_attribute: str
    cardinality: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relationship name must be non-empty")
        if self.source == self.target:
            raise SchemaError(
                f"relationship {self.name!r} must connect two distinct classes"
            )

    @property
    def classes(self) -> Tuple[str, str]:
        """The pair of class names this relationship connects."""
        return (self.source, self.target)

    def connects(self, class_a: str, class_b: str) -> bool:
        """Whether this relationship links ``class_a`` and ``class_b``."""
        return {class_a, class_b} == {self.source, self.target}

    def involves(self, class_name: str) -> bool:
        """Whether ``class_name`` participates in this relationship."""
        return class_name in (self.source, self.target)

    def other(self, class_name: str) -> str:
        """Return the class on the opposite side of ``class_name``.

        Raises
        ------
        SchemaError
            If ``class_name`` does not participate in the relationship.
        """
        if class_name == self.source:
            return self.target
        if class_name == self.target:
            return self.source
        raise SchemaError(
            f"class {class_name!r} does not participate in relationship "
            f"{self.name!r}"
        )

    def attribute_for(self, class_name: str) -> str:
        """Return the pointer attribute used by ``class_name`` for this link."""
        if class_name == self.source:
            return self.source_attribute
        if class_name == self.target:
            return self.target_attribute
        raise SchemaError(
            f"class {class_name!r} does not participate in relationship "
            f"{self.name!r}"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.source} <-> {self.target}"
