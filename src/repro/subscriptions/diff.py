"""Positional row-stream diffs: compute, and fold back.

A standing view's result is an *ordered* row list (engines are pinned to
byte-identical row order), so the minimal honest delta between two
executions is a positional edit script.  :func:`diff_rows` lowers the
old/new row lists through :class:`difflib.SequenceMatcher` over their
serialized forms and emits a flat change list of ``added`` / ``removed``
/ ``changed`` entries whose indices refer to the *new* row order and are
meant to be applied **sequentially** — exactly what :func:`apply_changes`
does, and what a subscribed client must do to maintain its copy.

The serialization key deliberately does **not** sort keys: attribute
order is part of the byte-identity contract the engines (and the
replication snapshots) already honor, so two rows that differ only in
key order are different rows here too.

>>> old = [{"a": 1}, {"a": 2}, {"a": 3}]
>>> new = [{"a": 1}, {"a": 9}, {"a": 3}, {"a": 4}]
>>> changes = diff_rows(old, new)
>>> changes == [
...     {"kind": "changed", "index": 1, "row": {"a": 9}},
...     {"kind": "added", "index": 3, "row": {"a": 4}},
... ]
True
>>> apply_changes(old, changes) == new
True
"""

from __future__ import annotations

import json
from difflib import SequenceMatcher
from typing import Any, Dict, List, Sequence

__all__ = ["diff_rows", "apply_changes"]


def _key(row: Dict[str, Any]) -> str:
    """The byte-identity serialization of one answer row."""
    return json.dumps(row, separators=(",", ":"), default=repr)


def diff_rows(
    old: Sequence[Dict[str, Any]], new: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """The sequential edit script turning ``old`` into ``new``.

    Empty when (and only when) the serialized row streams are identical.
    Replaced spans prefer ``changed`` entries (index-stable in-place
    updates) over a remove/add pair; surplus rows on either side become
    ``removed`` / ``added`` entries.
    """
    matcher = SequenceMatcher(
        None, [_key(row) for row in old], [_key(row) for row in new],
        autojunk=False,
    )
    changes: List[Dict[str, Any]] = []
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "equal":
            continue
        old_span, new_span = i2 - i1, j2 - j1
        shared = min(old_span, new_span)
        for offset in range(shared):
            changes.append(
                {"kind": "changed", "index": j1 + offset, "row": new[j1 + offset]}
            )
        for _ in range(old_span - shared):
            changes.append({"kind": "removed", "index": j1 + shared})
        for offset in range(shared, new_span):
            changes.append(
                {"kind": "added", "index": j1 + offset, "row": new[j1 + offset]}
            )
    return changes


def apply_changes(
    rows: Sequence[Dict[str, Any]], changes: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Fold one diff frame's ``changes`` into a row list (client side).

    Entries apply strictly in order against the evolving list; the input
    is not mutated.  Raises ``ValueError`` on an unknown kind or an
    out-of-range index — a client must treat that as a desync and
    re-subscribe rather than guess.
    """
    folded = list(rows)
    for change in changes:
        kind = change.get("kind")
        index = change.get("index")
        if not isinstance(index, int) or index < 0:
            raise ValueError(f"malformed diff index {index!r}")
        if kind == "added":
            if index > len(folded):
                raise ValueError(f"added index {index} beyond {len(folded)} rows")
            folded.insert(index, change["row"])
        elif kind == "removed":
            if index >= len(folded):
                raise ValueError(f"removed index {index} beyond {len(folded)} rows")
            del folded[index]
        elif kind == "changed":
            if index >= len(folded):
                raise ValueError(f"changed index {index} beyond {len(folded)} rows")
            folded[index] = change["row"]
        else:
            raise ValueError(f"unknown diff kind {kind!r}")
    return folded
