"""Live query subscriptions: incremental view maintenance over the journal.

The paper's optimizer produces *standing* optimized queries; this package
keeps their results standing too.  A subscription retains the optimized
query (and its physical plan), classifies every mutation-journal record
against the plan's scan classes and compiled single-class predicates, and
pushes ordered row-level diff frames — ``added`` / ``removed`` /
``changed``, tagged with the store version they reflect — instead of
making clients re-execute after every write.

Layers: :mod:`~repro.subscriptions.diff` (positional diff + client-side
fold), :mod:`~repro.subscriptions.view` (per-subscription state and delta
classification), :mod:`~repro.subscriptions.registry` (the delta engine
under the service's readers-writer lock), and
:mod:`~repro.subscriptions.queue` (the bounded push channel with the
replication feed's slow-consumer disconnect discipline).
"""

from .diff import apply_changes, diff_rows
from .queue import DEFAULT_QUEUE_LIMIT, PushChannel
from .registry import SubscriptionRegistry
from .view import StandingView

__all__ = [
    "apply_changes",
    "diff_rows",
    "DEFAULT_QUEUE_LIMIT",
    "PushChannel",
    "SubscriptionRegistry",
    "StandingView",
]
