"""The standing-plan registry: subscribe, pump journal deltas, resync.

One :class:`SubscriptionRegistry` lives on an
:class:`~repro.service.OptimizationService` (lazily, via
``service.subscription_registry()``).  It owns every
:class:`~repro.subscriptions.view.StandingView` and drives them from the
store's mutation journal:

* :meth:`subscribe` optimizes and executes the query **inside one read
  span** of the service's readers-writer lock, so the initial snapshot,
  the candidate sets and the version stamp are a single consistent cut —
  the same discipline as ``replication_capture``.
* :meth:`pump` — called by the gateway right after each mutation commits
  (and by a follower after applying replicated frames) — advances every
  view through ``journal_since(view.version)``.  Views whose records all
  classify irrelevant advance for free; the rest re-execute their
  optimized query and push a positional diff frame tagged with the
  batch-end store version.  Because the gateway pumps *after*
  ``service.mutate`` returns — and the WAL commit happens inside the
  mutation's write-lock span — a diff frame is only ever emitted for
  state that is already durable.
* Rule churn (:meth:`note_rule_churn`, flagged under the write lock by
  the mutation path) or a journal gap (the view lagged past the bounded
  journal) forces a **resync**: the query re-optimizes against the new
  rule set and the full row snapshot is pushed as a ``resync`` frame.

Pumps are serialized by a registry-level lock, so frames for one
subscription are emitted in strictly increasing version order.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, List, Optional

from ..server.protocol import diff_frame, resync_frame
from .diff import diff_rows
from .view import StandingView

__all__ = ["SubscriptionRegistry"]


class SubscriptionRegistry:
    """All standing views of one service, and the delta engine over them."""

    def __init__(self, service):
        self.service = service
        self._views: Dict[str, StandingView] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()  # guards the view map + counters
        self._pump_lock = threading.Lock()  # serializes delta pumps
        self._created = 0
        self._closed = 0
        self._diffs = 0
        self._resyncs = 0
        self._errors = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Number of live standing views."""
        with self._lock:
            return len(self._views)

    def subscribe(
        self,
        query,
        *,
        options: Optional[Dict[str, Any]] = None,
        emit=None,
        owner: Any = None,
    ) -> Dict[str, Any]:
        """Register a standing view; returns the initial snapshot payload.

        ``emit`` is called (from the pumping thread) with each ordered
        push frame; ``owner`` is an opaque handle :meth:`release` can
        later free every view of a disconnecting consumer by.
        """
        service = self.service
        if service.store is None:
            raise ValueError(
                "subscriptions require an attached object store"
            )
        options = dict(options or {})
        with self._lock:
            sid = f"sub-{next(self._ids)}"
        view = StandingView(sid, query, options=options, emit=emit, owner=owner)
        # One read span: snapshot rows, candidate sets and the version
        # stamp are atomic with respect to writers (no journal record can
        # land between the execution and the version the view claims).
        with service._store_lock.read():
            executor = self._bind(view)
        with self._lock:
            self._views[sid] = view
            self._created += 1
        return {
            "subscription": sid,
            "version": view.version,
            "rows": view.rows,
            "row_count": len(view.rows),
            "execution_mode": executor.mode.value,
            "classes": sorted(view.target.classes),
        }

    def unsubscribe(self, subscription_id: str) -> bool:
        """Drop one standing view; False when the id is unknown."""
        with self._lock:
            view = self._views.pop(subscription_id, None)
            if view is None:
                return False
            view.active = False
            self._closed += 1
        return True

    def release(self, owner: Any) -> List[str]:
        """Drop every view registered under ``owner`` (consumer gone)."""
        with self._lock:
            sids = [
                sid for sid, view in self._views.items() if view.owner is owner
            ]
            for sid in sids:
                self._views.pop(sid).active = False
            self._closed += len(sids)
        return sids

    def note_rule_churn(self, classes=None) -> int:
        """Flag views touching ``classes`` (None = all) for a resync.

        Called under the service's exclusive lock by the mutation path
        when dynamic rules actually changed, and by the gateway's
        ``rules`` handler; only sets flags, so it is safe anywhere.
        """
        with self._lock:
            views = list(self._views.values())
        touched = None if classes is None else set(classes)
        flagged = 0
        for view in views:
            if touched is not None and not (touched & set(view.query.classes)):
                continue
            if view.resync_reason is None:
                view.resync_reason = "rules_changed"
            flagged += 1
        return flagged

    # ------------------------------------------------------------------
    # The delta engine.
    # ------------------------------------------------------------------
    def pump(self) -> Dict[str, int]:
        """Advance every view to the current store version; push frames.

        Serialized: concurrent callers queue behind the pump lock, so
        each subscription's frames are emitted in version order.
        """
        report = {"views": 0, "diffs": 0, "resyncs": 0, "skipped": 0}
        with self._lock:
            views = [view for view in self._views.values() if view.active]
        if not views:
            return report
        with self._pump_lock:
            for view in views:
                report["views"] += 1
                try:
                    outcome = self._pump_view(view)
                except Exception:
                    # Self-heal on the next pump instead of failing the
                    # mutation RPC that triggered this one.
                    self._errors += 1
                    view.resync_reason = view.resync_reason or "error"
                    continue
                report[outcome] += 1
        return report

    def _pump_view(self, view: StandingView) -> str:
        service = self.service
        with service._store_lock.read():
            store = service.store
            if view.resync_reason is not None:
                self._resync_locked(view, view.resync_reason, store)
                return "resyncs"
            if store.version == view.version:
                return "skipped"
            records = store.journal_since(view.version)
            if records is None:
                # The bounded journal no longer bridges the gap.
                self._resync_locked(view, "journal_gap", store)
                return "resyncs"
            relevant = False
            for record in records:
                if view.consume(record, store):
                    relevant = True
            if not relevant:
                # Net effect proven empty: advance without re-executing.
                view.version = store.version
                return "skipped"
            executor = self._executor_for(view)
            apply_delta = getattr(executor, "apply_delta", None)
            if apply_delta is not None:
                execution, _touched = apply_delta(view.target, records)
            else:
                execution = executor.execute(view.target)
            changes = diff_rows(view.rows, execution.rows)
            view.rows = list(execution.rows)
            view.plan = execution.plan or view.plan
            view.version = store.version
            if not changes:
                return "skipped"
            view.diffs += 1
            self._diffs += 1
            frame = diff_frame(view.subscription_id, view.version, changes)
            if view.emit is not None:
                view.emit(frame)
            return "diffs"

    def _resync_locked(self, view: StandingView, reason: str, store) -> None:
        """Re-optimize + re-execute + full snapshot push (under read span)."""
        self._bind(view)
        view.resync_reason = None
        view.resyncs += 1
        self._resyncs += 1
        frame = resync_frame(view.subscription_id, view.version, view.rows, reason)
        if view.emit is not None:
            view.emit(frame)

    def _bind(self, view: StandingView):
        """Optimize + execute + rebind ``view`` (caller holds a read span)."""
        service = self.service
        target = view.query
        if view.options.get("optimize", True):
            target = service.optimize(view.query).optimized
        executor = self._executor_for(view)
        execution = executor.execute(target)
        view.rebind(
            target, execution.plan, execution.rows, service.store.version,
            service.store,
        )
        return executor

    def _executor_for(self, view: StandingView):
        return self.service._executor(
            view.options.get("execution_mode"),
            view.options.get("join_strategy", "hash"),
            view.options.get("workers"),
        )

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Aggregate counters plus one row per live view."""
        with self._lock:
            views = list(self._views.values())
            payload = {
                "active": len(views),
                "created": self._created,
                "closed": self._closed,
                "diffs": self._diffs,
                "resyncs": self._resyncs,
                "errors": self._errors,
            }
        payload["views"] = [view.snapshot() for view in views]
        return payload
