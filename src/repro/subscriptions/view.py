"""One standing query: retained plan, kernels, and delta classification.

A :class:`StandingView` is the server-side state of one subscription:
the original query, the optimized query it currently executes
(re-derived on rule churn), the retained physical plan, the last pushed
row list with the store version it reflects, and — the part that makes
incremental maintenance cheap — per-class *candidate* state compiled
from the optimized query's single-class predicates.

Delta classification (:meth:`consume`) decides, per journal record,
whether the view's rows can possibly have changed.  The rules are
conservative in exactly one direction (they may say "relevant" for a
record that turns out not to change the answer, never the reverse):

* a record on a class the optimized query does not bind is irrelevant;
* an ``insert`` failing any of the class's single-class predicates can
  never join into a result row (conjunctive semantics) — irrelevant;
* a ``delete`` of an instance that was not a candidate is irrelevant;
* an ``update`` is irrelevant only when the instance was not a candidate
  before **and** still fails the predicates after (checked against the
  live store row, since update records carry partial values).

Classes with no single-class predicates skip candidate tracking: every
record on them is relevant.  Candidate sets are maintained as records
stream through, so classification stays O(changed rows), not O(data).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from ..engine import compile_for_class

__all__ = ["StandingView"]


class StandingView:
    """Server-side state of one live subscription."""

    def __init__(
        self,
        subscription_id: str,
        query,
        *,
        options: Optional[Dict[str, Any]] = None,
        emit: Optional[Callable[[dict], None]] = None,
        owner: Any = None,
    ):
        self.subscription_id = subscription_id
        self.query = query  # the original (pre-optimization) query
        self.options = dict(options or {})
        self.emit = emit
        self.owner = owner
        self.active = True
        #: Set under the service write lock when dynamic rules touching
        #: this view's classes changed; the next pump re-optimizes and
        #: pushes a ``resync`` frame instead of a diff.
        self.resync_reason: Optional[str] = None
        # Bound state (rebind() after each optimize + execute).
        self.target = None  # the optimized query actually executed
        self.plan = None  # retained physical plan (observability)
        self.rows: List[Dict[str, Any]] = []
        self.version = 0  # store version the rows reflect
        self._class_set: Set[str] = set()
        self._kernels: Dict[str, List[Callable]] = {}
        self._candidates: Dict[str, Set[int]] = {}
        # Counters (surfaced through registry/gateway stats).
        self.diffs = 0
        self.resyncs = 0
        self.skipped = 0  # records on classes the view does not bind
        self.filtered = 0  # records filtered by the compiled kernels

    # ------------------------------------------------------------------
    # Binding.
    # ------------------------------------------------------------------
    def rebind(self, target, plan, rows, version, store) -> None:
        """Adopt a (re)optimized query, its plan and a fresh result.

        Compiles the per-class single-class predicate kernels of
        ``target`` and seeds the candidate OID sets from the store's
        current extents.  Must run inside a service read span so the
        rows, the version and the candidate sets are one atomic cut.
        """
        self.target = target
        self.plan = plan
        self.rows = list(rows)
        self.version = version
        self._class_set = set(target.classes)
        self._kernels = {}
        self._candidates = {}
        for class_name in target.classes:
            kernels = [
                compile_for_class(predicate, class_name)
                for predicate in target.predicates()
                if predicate.referenced_classes() == {class_name}
            ]
            if not kernels:
                continue  # unpredicated class: every record is relevant
            self._kernels[class_name] = kernels
            self._candidates[class_name] = {
                instance.oid
                for instance in store.instances(class_name)
                if self._passes(kernels, instance.values)
            }

    @staticmethod
    def _passes(kernels, values) -> bool:
        column = [values]
        return all(kernel(column)[0] for kernel in kernels)

    # ------------------------------------------------------------------
    # Delta classification.
    # ------------------------------------------------------------------
    def consume(self, record, store) -> bool:
        """True when ``record`` can affect this view's rows.

        Maintains the candidate sets as a side effect, so it must see
        every journal record the view advances over, in order, with
        ``store`` already reflecting the whole batch.
        """
        if record.class_name not in self._class_set:
            self.skipped += 1
            return False
        if record.op in ("create_index", "drop_index"):
            # Index lifecycle changes access paths, never row membership.
            self.skipped += 1
            return False
        kernels = self._kernels.get(record.class_name)
        if kernels is None:
            return True
        candidates = self._candidates[record.class_name]
        if record.op == "insert":
            if self._passes(kernels, record.values or {}):
                candidates.add(record.oid)
                return True
            self.filtered += 1
            return False
        if record.op == "delete":
            if record.oid in candidates:
                candidates.discard(record.oid)
                return True
            self.filtered += 1
            return False
        # update: the record carries only the changed attributes, so the
        # post-state is read from the live store row.
        was = record.oid in candidates
        instance = store.get(record.class_name, record.oid)
        now = instance is not None and self._passes(kernels, instance.values)
        if now:
            candidates.add(record.oid)
        else:
            candidates.discard(record.oid)
        if was or now:
            return True
        self.filtered += 1
        return False

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The per-view stats row (gateway ``stats`` payload)."""
        return {
            "subscription": self.subscription_id,
            "query": self.query.name,
            "classes": sorted(self._class_set),
            "version": self.version,
            "rows": len(self.rows),
            "diffs": self.diffs,
            "resyncs": self.resyncs,
            "skipped": self.skipped,
            "filtered": self.filtered,
        }
