"""Bounded push channel: worker-thread producers, event-loop consumer.

Diff frames are produced on gateway worker threads (the pump runs right
after a mutation commits) but must be written by the asyncio session that
owns the socket.  :class:`PushChannel` bridges the two with the same
slow-consumer discipline as the replication feed's subscriber queues: a
bounded pending deque, and on overflow the channel marks itself
overflowed, drops everything, and fires ``on_overflow`` exactly once on
the event loop — the gateway uses that to unsubscribe and disconnect the
consumer.  A slow subscriber is *never* silently skipped ahead; it is cut
off so it knows to resubscribe.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Any, Awaitable, Callable, Deque, Optional

__all__ = ["PushChannel", "DEFAULT_QUEUE_LIMIT"]

#: Pending push frames per subscription before the consumer is cut off.
DEFAULT_QUEUE_LIMIT = 1024


class PushChannel:
    """One subscription's ordered frame queue toward one consumer."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        deliver: Callable[[dict], Awaitable[None]],
        *,
        limit: int = DEFAULT_QUEUE_LIMIT,
        on_overflow: Optional[Callable[[], Awaitable[None]]] = None,
    ):
        self._loop = loop
        self._deliver = deliver
        self._limit = max(int(limit), 1)
        #: Set (once) by the gateway after the subscription id is known.
        self.on_overflow = on_overflow
        self._pending: Deque[dict] = deque()
        self._lock = threading.Lock()
        self._task: Optional[asyncio.Task] = None
        self.closed = False
        self.overflowed = False
        self.pushed = 0
        self.delivered = 0
        self.dropped = 0

    def push(self, frame: dict) -> None:
        """Enqueue one frame (any thread) and wake the loop-side drain."""
        with self._lock:
            if self.closed or self.overflowed:
                self.dropped += 1
                return
            self._pending.append(frame)
            self.pushed += 1
            if len(self._pending) > self._limit:
                # Never skip ahead: drop the whole backlog and cut the
                # consumer off (the drain fires on_overflow once).
                self.overflowed = True
                self.dropped += len(self._pending)
                self._pending.clear()
        try:
            self._loop.call_soon_threadsafe(self._spawn_drain)
        except RuntimeError:
            pass  # loop already closed (shutdown); nothing to deliver to

    def close(self) -> None:
        """Stop delivering; pending frames are discarded."""
        with self._lock:
            self.closed = True
            self.dropped += len(self._pending)
            self._pending.clear()

    def _spawn_drain(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        while True:
            overflow = None
            frame = None
            with self._lock:
                if self.overflowed and not self.closed:
                    self.closed = True
                    overflow = self.on_overflow
                elif not self.closed and self._pending:
                    frame = self._pending.popleft()
            if overflow is not None:
                await overflow()
                return
            if frame is None:
                return
            try:
                await self._deliver(frame)
            except Exception:
                # The consumer is gone (reset mid-write, closed loop
                # state): stop delivering; the session's own close path
                # releases the subscription.
                self.close()
                return
            self.delivered += 1
