"""Shared fixtures for the test suite."""

import pytest

from repro.constraints import ConstraintRepository, build_example_constraints
from repro.data import TABLE_4_1_SPECS, build_evaluation_schema, build_evaluation_setup
from repro.engine import DatabaseStatistics, ObjectStore
from repro.query import parse_query
from repro.schema import build_example_schema


@pytest.fixture(scope="session")
def example_schema():
    """The Figure 2.1 logistics schema."""
    return build_example_schema()


@pytest.fixture(scope="session")
def evaluation_schema():
    """The Section 4 evaluation schema (shared; the schema is immutable)."""
    return build_evaluation_schema()


@pytest.fixture(scope="session")
def seeded_logistics_database(evaluation_schema):
    """A small, deterministic hand-seeded database over the evaluation schema.

    Returns ``(schema, store, statistics)``.  Three suppliers, four vehicles
    and eight cargo instances wired through the ``supplies``/``collects``
    relationships — the fixture the engine tests (planner/executor, metrics
    parity) share.  Tests must not mutate the store.
    """
    schema = evaluation_schema
    store = ObjectStore(schema)
    suppliers = [
        store.insert("supplier", {"name": name, "region": "west", "rating": 3})
        for name in ("SFI", "Acme", "Globex")
    ]
    vehicles = [
        store.insert(
            "vehicle",
            {
                "vehicle_no": f"V{i}",
                "desc": desc,
                "class": 2 + (i % 3),
                "capacity": 4000,
            },
        )
        for i, desc in enumerate(["refrigerated truck", "van", "tanker", "van"])
    ]
    for i in range(8):
        supplier = suppliers[i % len(suppliers)]
        vehicle = vehicles[i % len(vehicles)]
        cargo = store.insert(
            "cargo",
            {
                "code": f"C{i}",
                "desc": "frozen food" if i % 4 == 0 else "textiles",
                "quantity": 50 + i,
                "category": "general",
                "supplies": supplier.oid,
                "collects": vehicle.oid,
            },
        )
        store.update("supplier", supplier.oid, {"supplies": [cargo.oid]})
        store.update("vehicle", vehicle.oid, {"collects": [cargo.oid]})
    statistics = DatabaseStatistics.collect(schema, store)
    return schema, store, statistics


@pytest.fixture(scope="session")
def example_constraints():
    """The Figure 2.2 constraints c1..c5."""
    return build_example_constraints()


@pytest.fixture()
def example_repository(example_schema, example_constraints):
    """A precompiled repository over the Figure 2.1/2.2 example."""
    repository = ConstraintRepository(example_schema)
    repository.add_all(example_constraints)
    repository.precompile()
    return repository


@pytest.fixture(scope="session")
def paper_query():
    """The sample query of Figure 2.3 (refrigerated trucks sent to SFI)."""
    return parse_query(
        '(SELECT {vehicle.vehicle#, cargo.desc, cargo.quantity} { } '
        '{vehicle.desc = "refrigerated truck", supplier.name = "SFI"} '
        '{collects, supplies} {supplier, cargo, vehicle})',
        name="figure_2_3",
    )


@pytest.fixture(scope="session")
def small_setup():
    """A small evaluation setup (DB1-sized) shared across integration tests."""
    return build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=12, seed=11
    )
