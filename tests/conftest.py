"""Shared fixtures for the test suite."""

import pytest

from repro.constraints import ConstraintRepository, build_example_constraints
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.query import parse_query
from repro.schema import build_example_schema


@pytest.fixture(scope="session")
def example_schema():
    """The Figure 2.1 logistics schema."""
    return build_example_schema()


@pytest.fixture(scope="session")
def example_constraints():
    """The Figure 2.2 constraints c1..c5."""
    return build_example_constraints()


@pytest.fixture()
def example_repository(example_schema, example_constraints):
    """A precompiled repository over the Figure 2.1/2.2 example."""
    repository = ConstraintRepository(example_schema)
    repository.add_all(example_constraints)
    repository.precompile()
    return repository


@pytest.fixture(scope="session")
def paper_query():
    """The sample query of Figure 2.3 (refrigerated trucks sent to SFI)."""
    return parse_query(
        '(SELECT {vehicle.vehicle#, cargo.desc, cargo.quantity} { } '
        '{vehicle.desc = "refrigerated truck", supplier.name = "SFI"} '
        '{collects, supplies} {supplier, cargo, vehicle})',
        name="figure_2_3",
    )


@pytest.fixture(scope="session")
def small_setup():
    """A small evaluation setup (DB1-sized) shared across integration tests."""
    return build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=12, seed=11
    )
