"""Concurrent service execution: execute_many across all three engines."""

import pytest

from repro.core import OptimizerConfig
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.engine import ParallelExecutor
from repro.service import ExecutionBatchResult, OptimizationService


@pytest.fixture(scope="module")
def service_setup():
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=10, seed=13, shard_count=2
    )
    service = OptimizationService(
        setup.schema,
        repository=setup.repository,
        cost_model=setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
        store=setup.store,
        engine_workers=2,
    )
    yield setup, service
    service.close()


def test_execute_many_matches_execute_across_engines(service_setup):
    setup, service = service_setup
    reference = [
        service.execute(query, execution_mode="rowwise") for query in setup.queries
    ]
    for mode in ("rowwise", "vectorized", "parallel"):
        batch = service.execute_many(setup.queries, execution_mode=mode)
        assert isinstance(batch, ExecutionBatchResult)
        assert len(batch) == len(setup.queries)
        assert batch.stats.execution_mode == mode
        assert batch.stats.total == len(setup.queries)
        assert batch.stats.wall_time > 0
        for envelope, single, query in zip(batch, reference, setup.queries):
            assert envelope.query is query  # aligned with input order
            assert envelope.rows == single.rows
            assert envelope.metrics.as_dict() == single.metrics.as_dict()


def test_execute_many_thread_fanout_is_deterministic(service_setup):
    setup, service = service_setup
    sequential = service.execute_many(setup.queries, execution_mode="vectorized")
    threaded = service.execute_many(
        setup.queries, execution_mode="vectorized", max_workers=4
    )
    assert threaded.stats.workers > 1
    for left, right in zip(sequential, threaded):
        assert left.rows == right.rows
        assert left.metrics.as_dict() == right.metrics.as_dict()


def test_execute_many_without_optimization(service_setup):
    setup, service = service_setup
    batch = service.execute_many(
        setup.queries[:4], optimize=False, execution_mode="vectorized"
    )
    assert all(envelope.optimization is None for envelope in batch)
    assert all(envelope.executed_query is envelope.query for envelope in batch)


def test_executor_cache_is_keyed_by_worker_width(service_setup):
    _setup, service = service_setup
    two = service._executor("parallel", "hash", 2)
    three = service._executor("parallel", "hash", 3)
    again = service._executor("parallel", "hash", 2)
    assert isinstance(two, ParallelExecutor)
    assert two is again
    assert two is not three
    assert two.workers == 2 and three.workers == 3
    # In-process engines ignore the width: one warm executor per
    # (mode, strategy), whatever workers value the caller passes.
    assert service._executor("vectorized", "hash", 2) is (
        service._executor("vectorized", "hash", 5)
    )


def test_attach_store_closes_worker_pools(service_setup):
    setup, service = service_setup
    executor = service._executor("parallel", "hash", 2)
    assert service._executors
    service.attach_store(setup.store)
    assert not service._executors
    assert executor._pool is None  # close() ran


def test_empty_batch(service_setup):
    _setup, service = service_setup
    batch = service.execute_many([], execution_mode="parallel")
    assert len(batch) == 0
    assert batch.stats.total == 0
    assert batch.total_rows() == 0
