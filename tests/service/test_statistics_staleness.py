"""Regression tests: statistics consumers read the versioned cache.

Two staleness bugs are pinned here:

* the parallel batch path used to call ``DatabaseStatistics.collect`` —
  a full walk of every extent — once **per batch**, even when the store
  had not changed between batches.  The fix routes it (and every other
  consumer) through the service's :class:`StatisticsCache`, whose
  contract is at most one collection per observed store version;
* the optimizer's cost model used to hold the snapshot collected at
  setup time forever, so selectivity estimates never noticed bulk data
  changes.  The fix binds the cost model to the cache as a *provider*,
  so every estimate prices against statistics current for the store's
  present version.

Both tests fail on the pre-fix tree.
"""

import pytest

from repro.constraints import ConstraintRepository
from repro.core import OptimizerConfig
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.engine.statistics import DatabaseStatistics
from repro.service import OptimizationService


@pytest.fixture()
def service_setup():
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=8, seed=41, shard_count=2
    )
    repository = ConstraintRepository(setup.schema)
    repository.add_all(setup.constraints)
    service = OptimizationService(
        setup.schema,
        repository=repository,
        cost_model=setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
        store=setup.store,
        engine_workers=2,
    )
    yield setup, service
    service.close()


def test_parallel_batches_collect_once_per_store_version(
    service_setup, monkeypatch
):
    """Three parallel batches on an unchanged store: ONE statistics walk."""
    setup, service = service_setup
    # A fresh evaluation store ends setup with an index-rebuild journal
    # floor of ``version + 1``, so the very first delta can never be
    # journal-bridged.  One warmup write moves the version past the floor;
    # everything measured below is steady-state behavior.
    service.mutate(
        "insert",
        "cargo",
        values={
            "code": "WARMUP",
            "desc": "floor warmup",
            "quantity": 1,
            "category": "general",
        },
    )
    calls = []
    real_collect = DatabaseStatistics.collect

    def counting_collect(schema, store, class_names=None):
        calls.append(None if class_names is None else tuple(class_names))
        return real_collect(schema, store, class_names=class_names)

    monkeypatch.setattr(
        DatabaseStatistics, "collect", staticmethod(counting_collect)
    )

    for _ in range(3):
        batch = service.execute_many(setup.queries, execution_mode="parallel")
        assert len(batch) == len(setup.queries)
    # The pre-fix batch path collected once per batch (>= 3 full walks);
    # the cache contract is one collection per observed store version.
    assert len(calls) == 1, f"expected one collect, saw {calls}"
    assert calls[0] is None  # the one walk was the initial full collect
    assert service.statistics_cache.collects == 1
    assert service.statistics_cache.full_collects == 1

    # A write moves the version: the next batch refreshes exactly once,
    # and the bounded journal narrows the walk to the touched class.
    service.mutate(
        "insert",
        "cargo",
        values={
            "code": "STALE-0",
            "desc": "staleness probe",
            "quantity": 7,
            "category": "general",
        },
    )
    service.execute_many(setup.queries, execution_mode="parallel")
    assert len(calls) == 2, f"expected one recollect after the write: {calls}"
    assert calls[1] == ("cargo",)  # journal-bridged partial recollect
    assert service.statistics_cache.partial_collects == 1

    # And batches after the recollect are free again.
    service.execute_many(setup.queries, execution_mode="parallel")
    assert len(calls) == 2


def test_selectivity_flips_after_bulk_delete(service_setup):
    """The cost model's estimates track bulk deletes, not setup-time stats."""
    _setup, service = service_setup
    store = service.store
    cost_model = service.optimizer.cost_model

    result = service.mutate(
        "insert_many",
        "cargo",
        rows=[
            {
                "code": f"BULK-{i}",
                "desc": "bulk cohort",
                "quantity": 1_000_000 + i,
                "category": "bulk",
            }
            for i in range(200)
        ],
    )
    assert result.applied == 200

    before = cost_model.statistics
    assert before.cardinality("cargo") == store.count("cargo")
    distinct_before = before.distinct("cargo", "quantity")

    deletes = [
        {"op": "delete", "class_name": "cargo", "oid": oid}
        for oid in result.oids
    ]
    service.mutate_many(deletes, op_label="bulk_delete")

    after = cost_model.statistics
    # Pre-fix: ``after`` was the setup-time snapshot — cardinality stuck
    # at the post-insert count and the quantity domain still stretched to
    # the bulk cohort's million-range values.
    assert after.cardinality("cargo") == store.count("cargo")
    assert after.cardinality("cargo") == before.cardinality("cargo") - 200
    assert after.distinct("cargo", "quantity") < distinct_before
    quantity = after.attribute_statistics("cargo", "quantity")
    assert quantity.maximum < 1_000_000

    # The flip is visible where it matters: the estimated match count of
    # an equality on the deleted cohort's attribute shrinks with the data.
    assert (
        after.cardinality("cargo") / after.distinct("cargo", "quantity")
        < before.cardinality("cargo") / distinct_before
    ) or after.distinct("cargo", "quantity") < distinct_before
