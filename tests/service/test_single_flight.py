"""Tests for single-flight deduplication and atomic counter snapshots."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.caching import LruCache, SingleFlightMap
from repro.constraints import ConstraintRepository, build_example_constraints
from repro.query import parse_query
from repro.schema import build_example_schema
from repro.service import OptimizationService, ResultSource

PAPER_QUERY = (
    '(SELECT {vehicle.vehicle#, cargo.desc, cargo.quantity} { } '
    '{vehicle.desc = "refrigerated truck", supplier.name = "SFI"} '
    '{collects, supplies} {supplier, cargo, vehicle})'
)


@pytest.fixture()
def service():
    schema = build_example_schema()
    repository = ConstraintRepository(schema)
    repository.add_all(build_example_constraints())
    return OptimizationService(schema, repository=repository)


# ----------------------------------------------------------------------
# SingleFlightMap unit behaviour
# ----------------------------------------------------------------------
def test_single_flight_leader_and_followers():
    flight = SingleFlightMap()
    future, leader = flight.begin("k")
    assert leader
    follower_future, follower = flight.begin("k")
    assert not follower and follower_future is future
    flight.resolve("k", 41)
    assert future.result() == 41
    stats = flight.snapshot()
    assert (stats.leaders, stats.followers, stats.in_flight) == (1, 1, 0)
    assert stats.dedup_rate == 0.5


def test_single_flight_retires_key_before_resolving():
    flight = SingleFlightMap()
    future, _ = flight.begin("k")
    flight.resolve("k", "done")
    # A request arriving after completion must start fresh, not observe
    # the finished flight.
    _, leader = flight.begin("k")
    assert leader


def test_single_flight_failure_propagates_and_is_not_cached():
    flight = SingleFlightMap()
    future, _ = flight.begin("k")
    follower_future, _ = flight.begin("k")
    flight.fail("k", RuntimeError("boom"))
    with pytest.raises(RuntimeError):
        follower_future.result()
    # The next caller retries fresh.
    _, leader = flight.begin("k")
    assert leader


def test_single_flight_concurrent_threads_share_one_computation():
    flight = SingleFlightMap()
    future, leader = flight.begin("key")  # this thread leads...
    assert leader

    def join():
        shared, is_leader = flight.begin("key")
        assert not is_leader
        return shared.result(timeout=5)

    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [pool.submit(join) for _ in range(8)]
        deadline = time.time() + 5
        while flight.snapshot().followers < 8:  # ...until all 8 joined
            assert time.time() < deadline, "followers never joined"
            time.sleep(0.001)
        flight.resolve("key", "value")
        assert [f.result(timeout=5) for f in futures] == ["value"] * 8
    assert len(flight) == 0
    stats = flight.snapshot()
    assert (stats.leaders, stats.followers) == (1, 8)


# ----------------------------------------------------------------------
# Service-level coalescing
# ----------------------------------------------------------------------
def test_optimize_coalesced_single_caller_behaves_like_optimize(service):
    query = parse_query(PAPER_QUERY)
    envelope = service.optimize_coalesced(query)
    assert envelope.source is ResultSource.COMPUTED
    again = service.optimize_coalesced(query)
    assert again.source is ResultSource.RESULT_CACHE


def test_optimize_coalesced_thundering_herd_runs_pipeline_once(service):
    query = parse_query(PAPER_QUERY)
    pipeline_runs = []
    original = service.optimizer.optimize

    def instrumented(target):
        # The leader holds the pipeline open until every other herd
        # member has joined its flight, making the coalescing count
        # deterministic.
        pipeline_runs.append(threading.get_ident())
        deadline = time.time() + 5
        while service.single_flight.snapshot().followers < 7:
            assert time.time() < deadline, "herd never joined the flight"
            time.sleep(0.001)
        return original(target)

    service.optimizer.optimize = instrumented

    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [
            pool.submit(service.optimize_coalesced, query) for _ in range(8)
        ]
        envelopes = [future.result(timeout=10) for future in futures]

    assert len(pipeline_runs) == 1, "the pipeline must run exactly once"
    sources = sorted(envelope.source.value for envelope in envelopes)
    assert sources.count("single_flight") == 7
    assert sources.count("computed") == 1
    optimized = {str(envelope.optimized) for envelope in envelopes}
    assert len(optimized) == 1
    assert service.single_flight.snapshot().in_flight == 0


def test_optimize_coalesced_key_includes_generation(service):
    query = parse_query(PAPER_QUERY)
    service.optimize_coalesced(query)
    before = service.single_flight.snapshot().leaders
    service.repository.add_all([])  # no-op, no generation bump
    service.optimize_coalesced(query)
    after = service.single_flight.snapshot()
    # Same generation: same flight key, but sequential calls never
    # coalesce (the flight retired) — both lead.
    assert after.leaders == before + 1


def test_optimize_coalesced_propagates_failures_without_caching(service):
    query = parse_query(PAPER_QUERY)
    calls = []
    original = service.optimizer.optimize

    def flaky(target):
        calls.append(1)
        if len(calls) == 1:
            raise RuntimeError("transient")
        return original(target)

    service.optimizer.optimize = flaky
    service.clear_result_cache()
    with pytest.raises(RuntimeError):
        service.optimize_coalesced(query, use_cache=False)
    envelope = service.optimize_coalesced(query, use_cache=False)
    assert envelope.source is ResultSource.COMPUTED


# ----------------------------------------------------------------------
# Atomic counter snapshots
# ----------------------------------------------------------------------
def test_lru_cache_snapshot_is_internally_consistent_under_load():
    cache = LruCache(maxsize=32)
    stop = threading.Event()

    def hammer():
        index = 0
        while not stop.is_set():
            cache.put(index % 64, index)
            cache.get((index * 7) % 64)
            index += 1

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(200):
            snapshot = cache.snapshot()
            assert snapshot.lookups == snapshot.hits + snapshot.misses
            assert 0 <= snapshot.entries <= snapshot.maxsize
            assert 0.0 <= snapshot.hit_rate <= 1.0
    finally:
        stop.set()
        for thread in threads:
            thread.join()


def test_service_stats_snapshot_shape(service):
    query = parse_query(PAPER_QUERY)
    service.optimize(query)
    service.optimize(query)
    stats = service.stats()
    assert stats.cache.result_hits == 1
    assert stats.cache.result_misses == 1
    assert stats.repository_constraints == 5
    assert stats.store_attached is False
    payload = stats.as_dict()
    assert payload["cache"]["result_hits"] == 1
    assert payload["repository"]["constraints"] == 5
    assert payload["single_flight"]["in_flight"] == 0
