"""Tests for the cached, batched OptimizationService facade."""

import pytest

from repro.constraints import ConstraintRepository
from repro.core import OptimizerConfig, SemanticQueryOptimizer
from repro.query import equivalence_key, structurally_equal
from repro.service import OptimizationService, ResultSource


@pytest.fixture()
def service(small_setup):
    return OptimizationService(
        small_setup.schema,
        repository=small_setup.repository,
        cost_model=small_setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )


@pytest.fixture()
def reference_optimizer(small_setup):
    """A plain optimizer over an identical, independent repository."""
    repository = ConstraintRepository(small_setup.schema)
    repository.add_all(small_setup.repository.declared())
    repository.precompile()
    return SemanticQueryOptimizer(
        small_setup.schema,
        repository=repository,
        cost_model=small_setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )


def test_optimize_matches_plain_optimizer(service, reference_optimizer, small_setup):
    for query in small_setup.queries:
        via_service = service.optimize(query)
        direct = reference_optimizer.optimize(query)
        assert structurally_equal(via_service.optimized, direct.optimized)
        assert via_service.source is ResultSource.COMPUTED
        assert via_service.timings.total >= 0.0
        assert len(via_service.trace) == len(direct.trace)


def test_result_cache_hit_on_repeat(service, small_setup):
    query = small_setup.queries[0]
    first = service.optimize(query)
    second = service.optimize(query)
    assert first.source is ResultSource.COMPUTED
    assert second.source is ResultSource.RESULT_CACHE
    assert second.cache_hit
    # The heavy fields are shared with the cached run; ``original`` points
    # at the query this call submitted.
    assert second.result.trace is first.result.trace
    assert second.result.optimized is first.result.optimized
    assert second.result.original is query
    stats = service.cache_stats()
    assert stats.result_hits == 1
    assert stats.result_misses == 1


def test_structurally_equal_query_hits_cache(service, small_setup):
    query = small_setup.queries[0]
    service.optimize(query)
    renamed = query.renamed("same-query-different-name")
    assert equivalence_key(renamed) == equivalence_key(query)
    hit = service.optimize(renamed)
    assert hit.source is ResultSource.RESULT_CACHE
    # The envelope reflects the submitted twin, not the cached one.
    assert hit.query is renamed
    assert hit.result.original is renamed


def test_use_cache_false_bypasses_result_cache(service, small_setup):
    query = small_setup.queries[0]
    service.optimize(query)
    rerun = service.optimize(query, use_cache=False)
    assert rerun.source is ResultSource.COMPUTED


def test_repository_mutation_invalidates_result_cache(service, small_setup):
    query = small_setup.queries[0]
    service.optimize(query)
    # Remove and re-add a constraint: two generation bumps, so both the old
    # cache entry and any entry keyed between the bumps are unreachable.
    declared = small_setup.repository.declared()
    small_setup.repository.remove(declared[0].name)
    after_remove = service.optimize(query)
    assert after_remove.source is ResultSource.COMPUTED
    small_setup.repository.add(declared[0])
    after_readd = service.optimize(query)
    assert after_readd.source is ResultSource.COMPUTED


def test_optimize_many_matches_sequential_calls(
    service, reference_optimizer, small_setup
):
    batch = service.optimize_many(small_setup.queries)
    assert len(batch) == len(small_setup.queries)
    for envelope, query in zip(batch, small_setup.queries):
        direct = reference_optimizer.optimize(query)
        assert structurally_equal(envelope.optimized, direct.optimized)


def test_optimize_many_deduplicates_structural_equals(service, small_setup):
    base = small_setup.queries[:4]
    duplicates = [q.renamed(f"{q.name}_dup") for q in base]
    workload = base + duplicates
    batch = service.optimize_many(workload)

    assert batch.stats.total == len(workload)
    assert batch.stats.unique == len(base)
    assert batch.stats.duplicates == len(duplicates)
    assert batch.sources()["batch_dedup"] == len(duplicates)
    # Every duplicate shares its original's computed answer.
    for index, duplicate in enumerate(duplicates):
        original_envelope = batch[index]
        duplicate_envelope = batch[len(base) + index]
        assert duplicate_envelope.source is ResultSource.BATCH_DEDUP
        assert duplicate_envelope.result.trace is original_envelope.result.trace
        assert duplicate_envelope.query is duplicate
        assert duplicate_envelope.result.original is duplicate
        assert structurally_equal(
            duplicate_envelope.optimized, original_envelope.optimized
        )


def test_concurrent_optimize_after_mutation(service, small_setup):
    """Threads racing the lazy re-precompile all see a complete grouping."""
    from concurrent.futures import ThreadPoolExecutor

    declared = small_setup.repository.declared()
    reference = {}
    for query in small_setup.queries:
        reference[query.name] = service.optimize(query, use_cache=False)

    # Mark the repository dirty, then hit it from several threads at once:
    # every result must match the sequential reference (the constraint set
    # is unchanged after the remove/re-add cycle).
    small_setup.repository.remove(declared[0].name)
    small_setup.repository.add(declared[0])
    with ThreadPoolExecutor(max_workers=4) as pool:
        racing = list(
            pool.map(
                lambda q: (q.name, service.optimize(q, use_cache=False)),
                small_setup.queries * 2,
            )
        )
    for name, envelope in racing:
        expected = reference[name]
        assert structurally_equal(envelope.optimized, expected.optimized)
        assert (
            envelope.result.relevant_constraints
            == expected.result.relevant_constraints
        )


def test_optimize_many_parallel_matches_sequential(service, small_setup):
    sequential = service.optimize_many(small_setup.queries, use_cache=False)
    parallel = service.optimize_many(
        small_setup.queries, max_workers=4, use_cache=False
    )
    assert parallel.stats.workers > 1
    for left, right in zip(sequential, parallel):
        assert structurally_equal(left.optimized, right.optimized)


def test_batch_result_reporting(service, small_setup):
    batch = service.optimize_many(small_setup.queries[:3])
    assert batch.stats.wall_time > 0.0
    assert batch.stats.mean_time > 0.0
    assert batch.stats.throughput > 0.0
    totals = batch.phase_totals()
    assert totals.total >= totals.transformation_only >= 0.0
    assert len(batch.optimized_queries()) == 3
    assert "queries" in batch.summary()
    assert batch[0].summary().startswith("[computed]")


def test_second_batch_served_from_cache(service, small_setup):
    service.optimize_many(small_setup.queries)
    warm = service.optimize_many(small_setup.queries)
    assert warm.stats.computed == 0
    assert warm.stats.result_cache_hits == warm.stats.unique
    assert warm.cache.result_hit_rate > 0.0


def test_result_cache_size_bound(small_setup):
    service = OptimizationService(
        small_setup.schema,
        repository=small_setup.repository,
        cost_model=small_setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
        result_cache_size=2,
    )
    for query in small_setup.queries[:3]:
        service.optimize(query)
    assert service.cache_stats().result_entries == 2
    # LRU: the first query was evicted, the last is still cached.
    assert (
        service.optimize(small_setup.queries[0]).source is ResultSource.COMPUTED
    )
    assert (
        service.optimize(small_setup.queries[2]).source
        is ResultSource.RESULT_CACHE
    )


def test_explicit_constraint_list_service(example_schema, example_constraints, paper_query):
    """The service also works without a repository (explicit constraints)."""
    service = OptimizationService(
        example_schema, constraints=example_constraints
    )
    first = service.optimize(paper_query)
    second = service.optimize(paper_query)
    assert sorted(first.result.eliminated_classes) == ["supplier"]
    assert second.source is ResultSource.RESULT_CACHE


def test_cache_hits_still_record_access_statistics(example_schema):
    """Result-cache and dedup hits must keep feeding the frequency stats."""
    from repro.constraints import build_example_constraints
    from repro.query import parse_query

    repository = ConstraintRepository(example_schema)
    repository.add_all(build_example_constraints())
    service = OptimizationService(example_schema, repository=repository)
    query = parse_query(
        '(SELECT {cargo.desc} { } {vehicle.desc = "refrigerated truck"} '
        "{collects} {cargo, vehicle})",
        name="stats-query",
    )
    service.optimize(query)
    seen_after_cold = repository.statistics.queries_seen
    hit = service.optimize(query)
    assert hit.source is ResultSource.RESULT_CACHE
    assert repository.statistics.queries_seen == seen_after_cold + 1
    batch = service.optimize_many([query, query.renamed("stats-dup")])
    assert batch.stats.duplicates == 1
    assert repository.statistics.queries_seen == seen_after_cold + 3


def test_clear_result_cache(service, small_setup):
    query = small_setup.queries[0]
    service.optimize(query)
    service.clear_result_cache()
    assert service.cache_stats().result_entries == 0
    assert service.optimize(query).source is ResultSource.COMPUTED
