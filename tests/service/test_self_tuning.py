"""Service-level integration of the self-tuning feedback loop.

Correctness contract: self-tuning changes *which plans are cheap*, never
*which rows come back* — every observable tuning change (weight swap,
index create/drop, rule demotion) bumps a generation that rides in the
cache epochs, so results priced under the old state age out instead of
being served as current.
"""

import pytest

from repro.constraints import ConstraintRepository
from repro.core import OptimizerConfig
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.query import parse_query
from repro.service import OptimizationService
from repro.tuning import TuningConfig


def _build_service(setup, **kwargs):
    repository = ConstraintRepository(setup.schema)
    repository.add_all(setup.constraints)
    return OptimizationService(
        setup.schema,
        repository=repository,
        cost_model=setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
        store=setup.store,
        **kwargs,
    )


@pytest.fixture()
def setup():
    return build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=8, seed=47, shard_count=2
    )


def test_enable_self_tuning_requires_a_store(setup):
    service = OptimizationService(
        setup.schema,
        constraints=setup.constraints,
        config=OptimizerConfig(record_access_statistics=False),
    )
    with pytest.raises(ValueError, match="store"):
        service.enable_self_tuning()


def test_calibration_swaps_weights_and_invalidates_pricing(setup):
    service = _build_service(setup)
    try:
        manager = service.enable_self_tuning(
            TuningConfig(
                auto_index=False,
                learn_rules=False,
                calibrate_interval=16,
                min_samples=8,
            )
        )
        cost_model = service.optimizer.cost_model
        generation_before = cost_model.weights_generation
        reference = [
            service.execute(query, execution_mode="rowwise").rows
            for query in setup.queries
        ]
        for _ in range(8):
            for query in setup.queries:
                service.execute(query, execution_mode="rowwise")
        assert manager.weight_swaps >= 1
        assert cost_model.weights_generation > generation_before
        assert manager.last_calibration is not None
        assert manager.last_calibration.mode == "rowwise"
        # Calibrated pricing never changes answers.
        for query, rows in zip(setup.queries, reference):
            assert service.execute(query, execution_mode="rowwise").rows == rows
    finally:
        service.close()


def test_hot_unindexed_attribute_gets_auto_indexed(setup):
    service = _build_service(setup)
    try:
        manager = service.enable_self_tuning(
            TuningConfig(
                calibrate=False,
                learn_rules=False,
                advice_interval=8,
                create_threshold=8.0,
                decay_interval=1024,
                min_cardinality=8,
            )
        )
        assert not setup.store.indexes.is_indexed("cargo", "quantity")
        hot = parse_query(
            "(SELECT {cargo.code} { } {cargo.quantity = 110} { } {cargo})",
            name="hot-quantity",
        )
        rows_before = service.execute(hot, optimize=False).rows
        for _ in range(15):
            service.execute(hot, optimize=False)
        # 16 observations with heat 16 >= 8: the advisor created the index
        # through the journaled write path.
        assert setup.store.indexes.is_indexed("cargo", "quantity")
        assert manager.advisor.creates == 1
        assert manager.generation >= 1
        assert service.execute(hot, optimize=False).rows == rows_before
        snapshot = service.stats().tuning
        assert snapshot["advisor"]["managed"] == ["cargo.quantity"]
    finally:
        service.close()


def test_demoted_rule_is_filtered_and_epoch_moves(setup):
    service = _build_service(setup)
    try:
        manager = service.enable_self_tuning(
            TuningConfig(calibrate=False, auto_index=False, min_trials=1)
        )
        query = setup.queries[0]
        first = service.optimize(query)
        used = first.result.trace.constraints_used()
        if not used:  # workload corner: pick any declared rule instead
            used = [service.repository.declared()[0].name]
        epoch_before = service._cache_epoch(query)

        # Force a demotion through the manager (the A/B path feeds this in
        # production; the unit contract is what the service does with it).
        rules = service._rule_generations(used)
        changed = manager.observe_ab(rules, optimized_cost=10.0, original_cost=5.0)
        assert changed and manager.is_demoted(used[0])

        # The tuning generation rides in the cache epoch: the old cached
        # result is unreachable and the recompute skips the demoted rule.
        assert service._cache_epoch(query) != epoch_before
        again = service.optimize(query)
        assert used[0] not in again.result.trace.constraints_used()
        snapshot = service.stats().tuning
        assert snapshot["rules"]["demoted"] == sorted(
            manager.payoff.demoted()
        )
    finally:
        service.close()


def test_ab_sampling_preserves_answers_and_feeds_payoff(setup):
    service = _build_service(setup)
    baseline = _build_service(
        build_evaluation_setup(
            TABLE_4_1_SPECS["DB1"], query_count=8, seed=47, shard_count=2
        )
    )
    try:
        manager = service.enable_self_tuning(
            TuningConfig(calibrate=False, auto_index=False, ab_interval=2)
        )
        for query in setup.queries:
            tuned = service.execute(query, execution_mode="vectorized")
            plain = baseline.execute(query, execution_mode="vectorized")
            assert tuned.rows == plain.rows
            assert tuned.metrics.as_dict() == plain.metrics.as_dict()
        # Some transformed queries were sampled: the payoff tracker saw
        # real trials (how many depends on which queries fired rules).
        if manager.payoff.trials:
            assert manager.snapshot()["rules"]["trials"] > 0
    finally:
        baseline.close()
        service.close()


def test_stats_payload_round_trips_tuning_block(setup):
    service = _build_service(setup)
    try:
        assert service.stats().tuning is None  # off by default
        service.enable_self_tuning(TuningConfig())
        payload = service.stats().as_dict()
        assert payload["tuning"]["enabled"] == {
            "calibrate": True,
            "index": True,
            "rules": True,
        }
    finally:
        service.close()
