"""Dynamic (state-derived) constraints interacting with the service caches.

The repository generation is the service's cache epoch: adding or removing
a constraint — including rules *derived from the current database state* by
:mod:`repro.constraints.dynamic` — must bump it, so that the service result
cache never serves an optimization computed under a different rule set.
Executor caches are keyed on the store version instead: state-derived rules
are only sound for the state they were derived from, so the pairing under
test here is exactly the production failure mode — data changes, rules are
re-derived, and every layer of caching has to notice.
"""

import pytest

from repro.constraints import ConstraintRepository
from repro.constraints.dynamic import DerivationConfig, derive_rules
from repro.core import OptimizerConfig
from repro.data import build_evaluation_constraints
from repro.engine import ObjectStore
from repro.query import Query
from repro.service import OptimizationService, ResultSource


@pytest.fixture()
def seeded_service(evaluation_schema):
    """A small hand-seeded database plus a service over a live repository."""
    schema = evaluation_schema
    store = ObjectStore(schema, shard_count=2)
    for i in range(8):
        store.insert(
            "cargo",
            {
                "code": f"C{i}",
                "desc": "frozen food" if i % 2 == 0 else "textiles",
                "quantity": 100 + i,
                "category": "perishable" if i % 2 == 0 else "general",
            },
        )
    repository = ConstraintRepository(schema)
    repository.add_all(build_evaluation_constraints())
    repository.precompile()
    service = OptimizationService(
        schema,
        repository=repository,
        config=OptimizerConfig(record_access_statistics=False),
        store=store,
        engine_workers=2,
    )
    yield schema, store, repository, service
    service.close()


def _query():
    return Query(
        projections=("cargo.code", "cargo.quantity"),
        selective_predicates=(),
        classes=("cargo",),
        name="dynamic-probe",
    )


def test_dynamic_rule_add_and_remove_bump_generation_and_cache(seeded_service):
    schema, store, repository, service = seeded_service
    query = _query()

    first = service.optimize(query)
    assert first.source is ResultSource.COMPUTED
    assert service.optimize(query).source is ResultSource.RESULT_CACHE

    generation = repository.generation
    rules = derive_rules(
        schema,
        store,
        config=DerivationConfig(derive_functional=False),
        existing_names=[c.name for c in repository.constraints()],
    )
    assert rules, "the seeded store must yield range rules"
    repository.add_all(rules)
    assert repository.generation > generation

    # The old cached result was computed under the old rule set: the next
    # optimize must recompute, not serve the stale entry.
    recomputed = service.optimize(query)
    assert recomputed.source is ResultSource.COMPUTED
    assert service.optimize(query).source is ResultSource.RESULT_CACHE

    # Removing a dynamic rule is another epoch: recompute again.
    generation = repository.generation
    repository.remove(rules[0].name)
    assert repository.generation > generation
    assert service.optimize(query).source is ResultSource.COMPUTED


@pytest.mark.parametrize("mode", ["vectorized", "parallel"])
def test_store_mutation_invalidates_executor_caches(seeded_service, mode):
    schema, store, repository, service = seeded_service
    query = _query()

    before = service.execute(query, execution_mode=mode, workers=2)
    row_count = before.execution.row_count
    assert row_count == store.count("cargo")

    # Mutate the store: version-keyed executor caches (vectorized pointer
    # and fragment caches, the parallel engine's forked pool) must notice.
    store.insert(
        "cargo",
        {"code": "C-late", "desc": "frozen food", "quantity": 500,
         "category": "perishable"},
    )
    after = service.execute(query, execution_mode=mode, workers=2)
    assert after.execution.row_count == row_count + 1
    assert any(
        row.get("cargo.code") == "C-late" for row in after.rows
    )


def test_rederived_rules_follow_the_data(seeded_service):
    """Re-deriving after a mutation yields bounds for the *new* state."""
    schema, store, repository, service = seeded_service
    config = DerivationConfig(derive_functional=False)
    taken = [c.name for c in repository.constraints()]
    before = {
        str(rule.consequent)
        for rule in derive_rules(schema, store, config=config, existing_names=taken)
        if "cargo.quantity" in str(rule.consequent)
    }
    store.insert(
        "cargo",
        {"code": "C-big", "desc": "textiles", "quantity": 9000,
         "category": "general"},
    )
    after = {
        str(rule.consequent)
        for rule in derive_rules(schema, store, config=config, existing_names=taken)
        if "cargo.quantity" in str(rule.consequent)
    }
    assert before != after
    assert any("9000" in consequent for consequent in after)


def test_failed_batch_reports_applied_count(seeded_service):
    """A mid-batch failure names how much of the batch was committed."""
    from repro.engine.storage import StorageError

    schema, store, repository, service = seeded_service
    before = store.count("cargo")
    with pytest.raises(StorageError, match=r"2 of 3 mutations applied"):
        service.mutate_many(
            [
                {"op": "insert", "class_name": "cargo", "values": {"code": "P0"}},
                {"op": "insert", "class_name": "cargo", "values": {"code": "P1"}},
                {"op": "delete", "class_name": "cargo", "oid": 99_999},
            ]
        )
    assert store.count("cargo") == before + 2
