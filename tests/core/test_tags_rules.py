"""Unit tests for tags and the Table 3.1/3.2/3.3 rules."""


from repro.constraints import ConstraintClass
from repro.core import (
    CellTag,
    PredicateTag,
    RetentionAction,
    TransformationKind,
    can_lower,
    classify_transformation,
    lower_of,
    priority_for,
    retention_action,
    target_tag,
)


def test_predicate_tag_ordering():
    assert PredicateTag.REDUNDANT.is_lower_than(PredicateTag.OPTIONAL)
    assert PredicateTag.OPTIONAL.is_lower_than(PredicateTag.IMPERATIVE)
    assert not PredicateTag.IMPERATIVE.is_lower_than(PredicateTag.OPTIONAL)
    assert lower_of(PredicateTag.IMPERATIVE, PredicateTag.REDUNDANT) is PredicateTag.REDUNDANT


def test_can_lower():
    assert can_lower(PredicateTag.IMPERATIVE, PredicateTag.OPTIONAL)
    assert can_lower(PredicateTag.OPTIONAL, PredicateTag.REDUNDANT)
    assert not can_lower(PredicateTag.REDUNDANT, PredicateTag.OPTIONAL)
    assert not can_lower(PredicateTag.OPTIONAL, PredicateTag.OPTIONAL)
    assert can_lower(None, PredicateTag.REDUNDANT)


def test_cell_tag_conversions():
    assert CellTag.IMPERATIVE.as_predicate_tag() is PredicateTag.IMPERATIVE
    assert CellTag.PRESENT_OPTIONAL.as_predicate_tag() is PredicateTag.OPTIONAL
    assert CellTag.ABSENT_ANTECEDENT.as_predicate_tag() is None
    assert CellTag.from_predicate_tag(PredicateTag.REDUNDANT) is CellTag.PRESENT_REDUNDANT
    assert CellTag.PRESENT_ANTECEDENT.is_antecedent
    assert CellTag.ABSENT_CONSEQUENT.is_consequent
    assert CellTag.IMPERATIVE.is_classification
    assert not CellTag.NOT_PRESENT.is_classification


def test_table_3_1_and_3_2_mapping():
    """Intra & not indexed -> redundant; intra & indexed -> optional; inter -> optional."""
    assert target_tag(ConstraintClass.INTRA, consequent_indexed=False) is PredicateTag.REDUNDANT
    assert target_tag(ConstraintClass.INTRA, consequent_indexed=True) is PredicateTag.OPTIONAL
    assert target_tag(ConstraintClass.INTER, consequent_indexed=False) is PredicateTag.OPTIONAL
    assert target_tag(ConstraintClass.INTER, consequent_indexed=True) is PredicateTag.OPTIONAL


def test_classify_transformation():
    assert (
        classify_transformation(present_in_query=True, consequent_indexed=True)
        is TransformationKind.RESTRICTION_ELIMINATION
    )
    assert (
        classify_transformation(present_in_query=False, consequent_indexed=True)
        is TransformationKind.INDEX_INTRODUCTION
    )
    assert (
        classify_transformation(present_in_query=False, consequent_indexed=False)
        is TransformationKind.RESTRICTION_INTRODUCTION
    )


def test_table_3_3_retention_actions():
    assert retention_action(PredicateTag.IMPERATIVE) is RetentionAction.RETAIN
    assert retention_action(PredicateTag.OPTIONAL) is RetentionAction.COST_BENEFIT
    assert retention_action(PredicateTag.REDUNDANT) is RetentionAction.DISCARD


def test_default_priorities():
    assert priority_for(TransformationKind.INDEX_INTRODUCTION) < priority_for(
        TransformationKind.RESTRICTION_ELIMINATION
    )
    assert priority_for(TransformationKind.RESTRICTION_ELIMINATION) < priority_for(
        TransformationKind.RESTRICTION_INTRODUCTION
    )
    assert (
        priority_for(
            TransformationKind.INDEX_INTRODUCTION,
            {TransformationKind.INDEX_INTRODUCTION: 9},
        )
        == 9
    )
