"""Integration tests: the full optimizer over the generated evaluation setup."""

from repro.core import OptimizerConfig, SemanticQueryOptimizer, StraightforwardOptimizer
from repro.query import answers_match, structurally_equal


def build_optimizer(setup, **config):
    return SemanticQueryOptimizer(
        setup.schema,
        repository=setup.repository,
        cost_model=setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False, **config),
    )


def test_optimized_queries_preserve_answers(small_setup):
    optimizer = build_optimizer(small_setup)
    for query in small_setup.queries:
        result = optimizer.optimize(query)
        assert answers_match(
            small_setup.schema, small_setup.store, query, result.optimized
        ), f"answers changed for {query.name}"


def test_optimizer_is_deterministic(small_setup):
    optimizer = build_optimizer(small_setup)
    for query in small_setup.queries[:5]:
        first = optimizer.optimize(query)
        second = optimizer.optimize(query)
        assert structurally_equal(first.optimized, second.optimized)


def test_optimizer_never_invents_unknown_classes(small_setup):
    optimizer = build_optimizer(small_setup)
    for query in small_setup.queries:
        result = optimizer.optimize(query)
        assert set(result.optimized.classes) <= set(query.classes)
        assert set(result.optimized.relationships) <= set(query.relationships)
        assert set(result.optimized.projections) <= set(query.projections)


def test_eliminated_classes_never_projected(small_setup):
    optimizer = build_optimizer(small_setup)
    for query in small_setup.queries:
        result = optimizer.optimize(query)
        projected = {p.split(".", 1)[0] for p in query.projections}
        assert not (set(result.eliminated_classes) & projected)


def test_optimize_all_returns_one_result_per_query(small_setup):
    optimizer = build_optimizer(small_setup)
    results = optimizer.optimize_all(small_setup.queries[:4])
    assert len(results) == 4


def test_priority_and_fifo_agree_without_budget(small_setup):
    fifo = build_optimizer(small_setup)
    priority = build_optimizer(small_setup, use_priority_queue=True)
    for query in small_setup.queries[:6]:
        assert structurally_equal(
            fifo.optimize(query).optimized, priority.optimize(query).optimized
        )


def test_explicit_constraint_list_matches_repository(small_setup):
    from_repository = build_optimizer(small_setup)
    explicit = SemanticQueryOptimizer(
        small_setup.schema,
        constraints=list(small_setup.repository.constraints()),
        cost_model=small_setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )
    for query in small_setup.queries[:6]:
        assert structurally_equal(
            from_repository.optimize(query).optimized,
            explicit.optimize(query).optimized,
        )


def test_baseline_preserves_answers_and_reports_checks(small_setup):
    baseline = StraightforwardOptimizer(
        small_setup.schema,
        list(small_setup.repository.constraints()),
        cost_model=small_setup.cost_model,
    )
    checks = 0
    for query in small_setup.queries[:8]:
        result = baseline.optimize(query)
        checks += result.profitability_checks
        assert answers_match(
            small_setup.schema, small_setup.store, query, result.optimized
        )
        assert result.elapsed >= 0.0
    assert checks > 0


def test_transformation_stats_are_reported(small_setup):
    optimizer = build_optimizer(small_setup)
    result = optimizer.optimize(small_setup.queries[0])
    assert result.transformation_stats is not None
    assert result.transformation_stats.fired == len(
        [r for r in result.trace if r.constraint_name]
    )
    assert result.retrieval_stats is not None
    assert result.retrieval_stats.fetched >= result.retrieval_stats.relevant
