"""Unit tests for the initialization phase (Section 3.1)."""

from repro.constraints import Predicate, build_example_constraints
from repro.core import CellTag, collect_predicates, filter_relevant, initialize
from repro.query import Query


def test_paper_example_initial_table(paper_query, example_repository):
    relevant, _stats = example_repository.retrieve_relevant(
        paper_query.classes, query_relationships=paper_query.relationships
    )
    init = initialize(paper_query, relevant, assume_relevant=True)
    table = init.table

    p1 = Predicate.equals("vehicle.desc", "refrigerated truck")
    p2 = Predicate.equals("supplier.name", "SFI")
    p3 = Predicate.equals("cargo.desc", "frozen food")

    # Section 3.5, step 1: the initial table for c1 and c2.
    assert table.get("c1", p1) is CellTag.PRESENT_ANTECEDENT
    assert table.get("c1", p3) is CellTag.ABSENT_CONSEQUENT
    assert table.get("c1", p2) is CellTag.NOT_PRESENT
    assert table.get("c2", p3) is CellTag.ABSENT_ANTECEDENT
    assert table.get("c2", p2) is CellTag.IMPERATIVE
    assert table.get("c2", p1) is CellTag.NOT_PRESENT


def test_filter_relevant_uses_classes_and_relationships(paper_query):
    constraints = build_example_constraints()
    relevant = filter_relevant(constraints, paper_query)
    assert {c.name for c in relevant} == {"c1", "c2"}


def test_collect_predicates_deduplicates(paper_query):
    constraints = build_example_constraints()[:2]
    predicates = collect_predicates(paper_query, constraints)
    keys = [p.key() for p in predicates]
    assert len(keys) == len(set(keys))
    assert len(predicates) == 3


def test_implication_based_antecedent_presence():
    constraints = [
        c
        for c in build_example_constraints()
        if c.name == "c2"
    ]
    query = Query(
        projections=("supplier.name",),
        selective_predicates=(Predicate.equals("cargo.desc", "frozen food"),),
        relationships=("supplies",),
        classes=("supplier", "cargo"),
    )
    init = initialize(query, constraints)
    assert init.table.get("c2", constraints[0].antecedents[0]) is CellTag.PRESENT_ANTECEDENT

    # Without implication matching the literal match still works here.
    strict = initialize(query, constraints, use_implication=False)
    assert strict.table.get("c2", constraints[0].antecedents[0]) is CellTag.PRESENT_ANTECEDENT


def test_initialize_filters_irrelevant_constraints(paper_query):
    constraints = build_example_constraints()
    init = initialize(paper_query, constraints)
    assert {c.name for c in init.constraints} == {"c1", "c2"}
    assert init.table.constraint_count() == 2
    assert set(init.query_predicates) == {
        p.normalized() for p in paper_query.predicates()
    }
