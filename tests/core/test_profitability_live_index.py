"""Regression: profitability heuristics consult the *live* index set.

The no-cost-model fallback used to ask the static schema whether a
predicate's attribute "is indexed" — but the schema records the declared
physical design, not the store's current one.  Once an index is dropped
mid-workload (an operator, or the auto-indexer retiring it), the
heuristic kept retaining predicates that could no longer use an index
scan.  The analyzer now prefers a caller-supplied ``index_probe`` (the
service wires in the store's :class:`IndexManager`), falling back to the
schema only when no live answer is available.
"""

import pytest

from repro.constraints import ConstraintRepository
from repro.core import OptimizerConfig, SemanticQueryOptimizer
from repro.core.profitability import ProfitabilityAnalyzer
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.query import parse_query
from repro.service import OptimizationService


@pytest.fixture()
def setup():
    return build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=4, seed=43, shard_count=2
    )


@pytest.fixture()
def restricted_query():
    """Two selective predicates on cargo: the fallback's 'sole selective
    predicate' branch cannot mask the index decision."""
    return parse_query(
        '(SELECT {cargo.desc} { } '
        '{cargo.category = "general", cargo.desc = "frozen food"} '
        "{ } {cargo})",
        name="live-index-probe",
    )


def _category_predicate(query):
    (predicate,) = [
        p
        for p in query.selective_predicates
        if p.left.attribute_name == "category"
    ]
    return predicate


def test_heuristic_follows_live_index_drop(setup, restricted_query):
    store = setup.store
    analyzer = ProfitabilityAnalyzer(
        setup.schema,
        index_probe=lambda cls, attr: store.indexes.is_indexed(cls, attr),
    )
    predicate = _category_predicate(restricted_query)

    # Declared AND live: the index-scan branch retains the predicate.
    decision = analyzer.predicate_is_profitable(restricted_query, predicate)
    assert decision.profitable
    assert "index scan" in decision.reason

    # Dropped mid-workload: the schema still says "indexed", the live
    # store says no — the pre-fix analyzer kept answering True here.
    assert store.drop_index("cargo", "category")
    assert setup.schema.is_indexed("cargo", "category")
    decision = analyzer.predicate_is_profitable(restricted_query, predicate)
    assert not decision.profitable
    assert "not indexed" in decision.reason

    # Re-created: the decision flips back without rebuilding the analyzer.
    assert store.create_index("cargo", "category")
    assert analyzer.predicate_is_profitable(
        restricted_query, predicate
    ).profitable


def test_probe_errors_fall_back_to_schema(setup, restricted_query):
    def broken_probe(cls, attr):
        raise RuntimeError("store detached")

    analyzer = ProfitabilityAnalyzer(setup.schema, index_probe=broken_probe)
    predicate = _category_predicate(restricted_query)
    decision = analyzer.predicate_is_profitable(restricted_query, predicate)
    assert decision.profitable  # schema fallback: declared indexed


def test_service_wires_live_probe_into_optimizer(setup):
    repository = ConstraintRepository(setup.schema)
    repository.add_all(setup.constraints)
    service = OptimizationService(
        setup.schema,
        repository=repository,
        config=OptimizerConfig(record_access_statistics=False),
        store=setup.store,
    )
    try:
        assert service.optimizer.index_probe is not None
        assert service._live_index_probe("cargo", "category") is True
        setup.store.drop_index("cargo", "category")
        assert service._live_index_probe("cargo", "category") is False
        setup.store.create_index("cargo", "category")
        assert service._live_index_probe("cargo", "category") is True
    finally:
        service.close()


def test_optimizer_passes_probe_to_analyzer(setup, restricted_query):
    optimizer = SemanticQueryOptimizer(
        setup.schema,
        constraints=setup.constraints,
        config=OptimizerConfig(record_access_statistics=False),
        index_probe=lambda cls, attr: False,
    )
    # The optimizer's analyzer must see the probe: with every attribute
    # reported unindexed, the restricted query's category predicate is
    # ruled unprofitable by the analyzer the optimizer builds internally.
    analyzer = ProfitabilityAnalyzer(
        setup.schema, index_probe=optimizer.index_probe
    )
    predicate = _category_predicate(restricted_query)
    assert not analyzer.predicate_is_profitable(
        restricted_query, predicate
    ).profitable
