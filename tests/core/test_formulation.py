"""Unit tests for query formulation, profitability and class elimination."""

import pytest

from repro.constraints import Predicate
from repro.core import (
    ProfitabilityAnalyzer,
    QueryFormulator,
    SemanticQueryOptimizer,
    initialize,
    TransformationEngine,
)
from repro.query import Query


@pytest.fixture(scope="module")
def schema(evaluation_schema):
    """The shared evaluation schema (see tests/conftest.py)."""
    return evaluation_schema


def test_heuristic_profitability_prefers_indexed_predicates(schema):
    analyzer = ProfitabilityAnalyzer(schema)
    query = Query(
        projections=("cargo.code",),
        selective_predicates=(Predicate.equals("cargo.desc", "frozen food"),),
        classes=("cargo",),
    )
    indexed = analyzer.predicate_is_profitable(
        query, Predicate.equals("cargo.desc", "frozen food")
    )
    assert indexed.profitable

    crowded = query.add_selective_predicates(
        [Predicate.selection("cargo.quantity", ">=", 10)]
    )
    non_indexed = analyzer.predicate_is_profitable(
        crowded, Predicate.selection("cargo.quantity", ">=", 10)
    )
    assert not non_indexed.profitable

    join = analyzer.predicate_is_profitable(
        query, Predicate.comparison("driver.licenseClass", ">=", "vehicle.class")
    )
    assert not join.profitable


def test_heuristic_class_elimination_always_profitable(schema):
    analyzer = ProfitabilityAnalyzer(schema)
    query = Query(
        projections=("cargo.code",),
        relationships=("supplies",),
        classes=("cargo", "supplier"),
    )
    decision = analyzer.class_elimination_is_profitable(query, "supplier")
    assert decision.profitable


def test_cost_model_profitability_reports_costs(schema, small_setup):
    analyzer = ProfitabilityAnalyzer(schema, cost_model=small_setup.cost_model)
    query = small_setup.queries[0]
    predicate = Predicate.equals("cargo.desc", "frozen food")
    if "cargo" not in query.classes:
        query = Query(
            projections=("cargo.code",),
            classes=("cargo",),
        )
    decision = analyzer.predicate_is_profitable(query, predicate)
    assert decision.cost_with is not None and decision.cost_without is not None
    assert decision.saving == pytest.approx(
        decision.cost_without - decision.cost_with
    )


def test_formulator_drops_redundant_and_keeps_imperative(schema):
    query = Query(
        projections=("cargo.code",),
        selective_predicates=(
            Predicate.equals("cargo.category", "perishable"),
            Predicate.selection("cargo.quantity", "<=", 100),
        ),
        classes=("cargo",),
    )
    from repro.constraints import SemanticConstraint

    constraint = SemanticConstraint.build(
        "r1",
        [Predicate.equals("cargo.category", "perishable")],
        Predicate.selection("cargo.quantity", "<=", 100),
        anchor_classes={"cargo"},
    )
    init = initialize(query, [constraint])
    TransformationEngine(init.table, schema).run()
    result = QueryFormulator(schema).formulate(query, init.table)
    assert result.query.has_predicate(Predicate.equals("cargo.category", "perishable"))
    assert not result.query.has_predicate(
        Predicate.selection("cargo.quantity", "<=", 100)
    )
    assert result.discarded_redundant


def test_formulator_does_not_eliminate_projected_class(schema):
    query = Query(
        projections=("cargo.code", "supplier.name"),
        relationships=("supplies",),
        classes=("cargo", "supplier"),
    )
    init = initialize(query, [])
    result = QueryFormulator(schema).formulate(query, init.table)
    assert set(result.query.classes) == {"cargo", "supplier"}
    assert result.eliminated_classes == []


def test_formulator_does_not_eliminate_class_with_imperative_predicate(schema):
    query = Query(
        projections=("cargo.code",),
        selective_predicates=(Predicate.equals("supplier.region", "west"),),
        relationships=("supplies",),
        classes=("cargo", "supplier"),
    )
    init = initialize(query, [])
    result = QueryFormulator(schema).formulate(query, init.table)
    assert "supplier" in result.query.classes


def test_formulator_eliminates_dangling_class(schema):
    query = Query(
        projections=("cargo.code",),
        relationships=("supplies",),
        classes=("cargo", "supplier"),
    )
    init = initialize(query, [])
    result = QueryFormulator(schema).formulate(query, init.table)
    assert result.eliminated_classes == ["supplier"]
    assert result.query.classes == ("cargo",)
    assert result.query.relationships == ()


def test_formulator_cascading_elimination(schema):
    """Dropping an end class can make its neighbour dangling in turn."""
    query = Query(
        projections=("cargo.code",),
        relationships=("collects", "engComp"),
        classes=("cargo", "vehicle", "engine"),
    )
    init = initialize(query, [])
    result = QueryFormulator(schema).formulate(query, init.table)
    assert set(result.eliminated_classes) == {"engine", "vehicle"}
    assert result.query.classes == ("cargo",)


def test_class_elimination_can_be_disabled(schema):
    query = Query(
        projections=("cargo.code",),
        relationships=("supplies",),
        classes=("cargo", "supplier"),
    )
    init = initialize(query, [])
    result = QueryFormulator(schema, enable_class_elimination=False).formulate(
        query, init.table
    )
    assert result.eliminated_classes == []


def test_optimizer_requires_constraints_or_repository(schema):
    with pytest.raises(ValueError):
        SemanticQueryOptimizer(schema)
