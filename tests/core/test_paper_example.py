"""Integration test: the paper's worked example (Figure 2.3 / Section 3.5).

The sample query lists the vehicle# of refrigerated trucks sent to SFI, plus
the description and quantity of the collected cargoes.  The paper's
optimizer:

#1 introduces ``cargo.desc = "frozen food"`` using c1 (restriction/index
   introduction) — the predicate becomes *optional*;
#2 eliminates ``supplier.name = "SFI"`` using c2 — it becomes *optional*;
#3 eliminates the now-dangling ``supplier`` class.

The final query keeps only ``vehicle.desc = "refrigerated truck"``
(imperative) and ``cargo.desc = "frozen food"`` (optional, retained because
``cargo.desc`` is indexed), over {cargo, vehicle} and the ``collects``
relationship.
"""

from repro.constraints import Predicate
from repro.core import (
    OptimizerConfig,
    PredicateTag,
    SemanticQueryOptimizer,
    TransformationKind,
)
from repro.query import parse_query, structurally_equal

P1 = Predicate.equals("vehicle.desc", "refrigerated truck")
P2 = Predicate.equals("supplier.name", "SFI")
P3 = Predicate.equals("cargo.desc", "frozen food")


def optimize(example_schema, example_repository, paper_query, **config):
    optimizer = SemanticQueryOptimizer(
        example_schema,
        repository=example_repository,
        config=OptimizerConfig(**config) if config else None,
    )
    return optimizer.optimize(paper_query)


def test_final_predicate_classification(example_schema, example_repository, paper_query):
    result = optimize(example_schema, example_repository, paper_query)
    tags = {p.normalized(): tag for p, tag in result.predicate_tags.items()}
    assert tags[P1.normalized()] is PredicateTag.IMPERATIVE
    assert tags[P2.normalized()] is PredicateTag.OPTIONAL
    assert tags[P3.normalized()] is PredicateTag.OPTIONAL


def test_supplier_class_is_eliminated(example_schema, example_repository, paper_query):
    result = optimize(example_schema, example_repository, paper_query)
    assert result.eliminated_classes == ["supplier"]
    assert set(result.optimized.classes) == {"cargo", "vehicle"}
    assert result.optimized.relationships == ("collects",)


def test_transformed_query_matches_figure_2_3(
    example_schema, example_repository, paper_query
):
    result = optimize(example_schema, example_repository, paper_query)
    expected = parse_query(
        '(SELECT {vehicle.vehicle#, cargo.desc, cargo.quantity} { } '
        '{vehicle.desc = "refrigerated truck", cargo.desc = "frozen food"} '
        '{collects} {cargo, vehicle})'
    )
    assert structurally_equal(result.optimized, expected)
    assert result.was_transformed


def test_trace_contains_all_three_transformations(
    example_schema, example_repository, paper_query
):
    result = optimize(example_schema, example_repository, paper_query)
    kinds = [record.kind for record in result.trace]
    assert TransformationKind.CLASS_ELIMINATION in kinds
    assert any(
        record.kind
        in (
            TransformationKind.INDEX_INTRODUCTION,
            TransformationKind.RESTRICTION_INTRODUCTION,
        )
        and record.predicate.normalized() == P3.normalized()
        for record in result.trace
    )
    assert any(
        record.predicate is not None
        and record.predicate.normalized() == P2.normalized()
        and record.new_tag is PredicateTag.OPTIONAL
        for record in result.trace
        if record.kind is not TransformationKind.CLASS_ELIMINATION
    )
    assert result.trace.describe().count("#") >= 3


def test_example_works_without_class_elimination(
    example_schema, example_repository, paper_query
):
    result = optimize(
        example_schema,
        example_repository,
        paper_query,
        enable_class_elimination=False,
    )
    assert result.eliminated_classes == []
    assert set(result.optimized.classes) == {"supplier", "cargo", "vehicle"}
    # The SFI predicate survives as a retained or discarded optional, and the
    # introduced frozen-food predicate is present.
    assert result.optimized.has_predicate(P3)


def test_priority_queue_reaches_same_final_query(
    example_schema, example_repository, paper_query
):
    fifo = optimize(example_schema, example_repository, paper_query)
    priority = optimize(
        example_schema, example_repository, paper_query, use_priority_queue=True
    )
    assert structurally_equal(fifo.optimized, priority.optimized)


def test_summary_and_timings(example_schema, example_repository, paper_query):
    result = optimize(example_schema, example_repository, paper_query)
    assert result.timings.total >= result.timings.transformation_only
    assert result.relevant_constraints >= 2
    assert "transformation" in result.summary()
