"""Unit tests for the transformation table and queues."""

import pytest

from repro.constraints import Predicate, build_example_constraints
from repro.core import (
    CellTag,
    PredicateTag,
    PriorityTransformationQueue,
    QueueEntry,
    TransformationKind,
    TransformationQueue,
    TransformationTable,
)


def build_table():
    constraints = build_example_constraints()[:2]  # c1, c2
    p1 = Predicate.equals("vehicle.desc", "refrigerated truck")
    p2 = Predicate.equals("supplier.name", "SFI")
    p3 = Predicate.equals("cargo.desc", "frozen food")
    table = TransformationTable(constraints, [p1, p2, p3], [p1, p2])
    return table, constraints, (p1, p2, p3)


def test_table_structure():
    table, constraints, (p1, p2, p3) = build_table()
    assert table.constraint_count() == 2
    assert table.predicate_count() == 3
    assert table.constraint_names() == ["c1", "c2"]
    assert table.was_in_query(p1) and not table.was_in_query(p3)
    assert table.get("c1", p1) is CellTag.NOT_PRESENT


def test_cell_set_get_and_column():
    table, constraints, (p1, p2, p3) = build_table()
    table.set("c1", p1, CellTag.PRESENT_ANTECEDENT)
    table.set("c1", p3, CellTag.ABSENT_CONSEQUENT)
    table.set("c2", p3, CellTag.ABSENT_ANTECEDENT)
    assert table.get("c1", p1) is CellTag.PRESENT_ANTECEDENT
    assert table.column(p3) == {
        "c1": CellTag.ABSENT_CONSEQUENT,
        "c2": CellTag.ABSENT_ANTECEDENT,
    }
    assert set(table.row("c1")) == {p1.key(), p3.key()}
    with pytest.raises(KeyError):
        table.set("cX", p1, CellTag.IMPERATIVE)


def test_final_predicates_defaults_to_imperative():
    table, constraints, (p1, p2, p3) = build_table()
    finals = dict(table.final_predicates())
    assert finals[p1.normalized()] is PredicateTag.IMPERATIVE
    assert p3.normalized() not in finals  # never introduced


def test_final_predicates_after_classification():
    table, constraints, (p1, p2, p3) = build_table()
    table.set("c2", p2, CellTag.PRESENT_OPTIONAL)
    table.set("c1", p3, CellTag.PRESENT_OPTIONAL)
    finals = dict(table.final_predicates())
    assert finals[p2.normalized()] is PredicateTag.OPTIONAL
    assert finals[p3.normalized()] is PredicateTag.OPTIONAL  # introduced
    assert table.was_introduced(p3) and not table.was_introduced(p2)


def test_antecedents_all_present():
    table, constraints, (p1, p2, p3) = build_table()
    c1 = constraints[0]
    table.set("c1", p1, CellTag.ABSENT_ANTECEDENT)
    assert not table.antecedents_all_present(c1)
    table.set("c1", p1, CellTag.PRESENT_ANTECEDENT)
    assert table.antecedents_all_present(c1)


def test_render_contains_constraints_and_predicates():
    table, _constraints, (p1, _p2, _p3) = build_table()
    text = table.render()
    assert "c1" in text and "vehicle.desc" in text


def test_fifo_queue_order_and_dedup():
    queue = TransformationQueue()
    first = QueueEntry("c1", TransformationKind.RESTRICTION_ELIMINATION)
    second = QueueEntry("c2", TransformationKind.INDEX_INTRODUCTION)
    assert queue.push(first)
    assert not queue.push(QueueEntry("c1", TransformationKind.INDEX_INTRODUCTION))
    assert queue.push(second)
    assert len(queue) == 2 and queue.contains("c1")
    assert queue.pop().constraint_name == "c1"
    assert queue.pop().constraint_name == "c2"
    assert not queue
    with pytest.raises(IndexError):
        queue.pop()
    assert queue.enqueued_total == 2


def test_fifo_queue_discard():
    queue = TransformationQueue()
    queue.push(QueueEntry("c1", TransformationKind.RESTRICTION_ELIMINATION))
    queue.discard("c1")
    assert not queue.contains("c1") and len(queue) == 0


def test_priority_queue_serves_index_introduction_first():
    queue = PriorityTransformationQueue()
    queue.push(QueueEntry("slow", TransformationKind.RESTRICTION_INTRODUCTION))
    queue.push(QueueEntry("medium", TransformationKind.RESTRICTION_ELIMINATION))
    queue.push(QueueEntry("fast", TransformationKind.INDEX_INTRODUCTION))
    assert [entry.constraint_name for entry in queue.pending()] == [
        "fast",
        "medium",
        "slow",
    ]
    assert queue.pop().constraint_name == "fast"
    queue.discard("medium")
    assert queue.pop().constraint_name == "slow"
    with pytest.raises(IndexError):
        queue.pop()


def test_priority_queue_fifo_within_same_priority():
    queue = PriorityTransformationQueue()
    queue.push(QueueEntry("a", TransformationKind.RESTRICTION_ELIMINATION))
    queue.push(QueueEntry("b", TransformationKind.RESTRICTION_ELIMINATION))
    assert queue.pop().constraint_name == "a"
    assert queue.pop().constraint_name == "b"
