"""Unit tests for the transformation engine (Sections 3.2 and 3.3)."""

from repro.constraints import Predicate, SemanticConstraint
from repro.core import (
    CellTag,
    PredicateTag,
    TransformationEngine,
    TransformationKind,
    initialize,
)
from repro.data import build_evaluation_schema
from repro.query import Query


def make_query(predicates, classes, relationships=()):
    return Query(
        projections=(f"{classes[0]}.code",) if classes[0] == "cargo" else (f"{classes[0]}.name",),
        selective_predicates=tuple(predicates),
        relationships=tuple(relationships),
        classes=tuple(classes),
    )


def run_engine(query, constraints):
    schema = build_evaluation_schema()
    init = initialize(query, constraints)
    engine = TransformationEngine(init.table, schema)
    trace = engine.run()
    return engine, trace, init.table


def test_intra_class_non_indexed_consequent_becomes_redundant():
    constraint = SemanticConstraint.build(
        "r1",
        [Predicate.equals("cargo.category", "perishable")],
        Predicate.selection("cargo.quantity", "<=", 100),
        anchor_classes={"cargo"},
    )
    query = make_query(
        [
            Predicate.equals("cargo.category", "perishable"),
            Predicate.selection("cargo.quantity", "<=", 100),
        ],
        ["cargo"],
    )
    engine, trace, _table = run_engine(query, [constraint])
    tags = engine.final_tags()
    quantity = Predicate.selection("cargo.quantity", "<=", 100).normalized()
    assert tags[quantity] is PredicateTag.REDUNDANT
    assert trace.records[0].kind is TransformationKind.RESTRICTION_ELIMINATION


def test_intra_class_indexed_consequent_becomes_optional():
    constraint = SemanticConstraint.build(
        "r1",
        [Predicate.equals("cargo.category", "perishable")],
        Predicate.equals("cargo.desc", "frozen food"),
        anchor_classes={"cargo"},
    )
    query = make_query(
        [Predicate.equals("cargo.category", "perishable")], ["cargo"]
    )
    engine, trace, _table = run_engine(query, [constraint])
    tags = engine.final_tags()
    introduced = Predicate.equals("cargo.desc", "frozen food").normalized()
    assert tags[introduced] is PredicateTag.OPTIONAL
    assert trace.records[0].kind is TransformationKind.INDEX_INTRODUCTION


def test_constraint_with_unsatisfied_antecedent_never_fires():
    constraint = SemanticConstraint.build(
        "r1",
        [Predicate.equals("cargo.category", "perishable")],
        Predicate.equals("cargo.desc", "frozen food"),
        anchor_classes={"cargo"},
    )
    query = make_query([Predicate.equals("cargo.category", "bulk")], ["cargo"])
    engine, trace, _table = run_engine(query, [constraint])
    assert len(trace) == 0
    assert engine.stats.fired == 0


def test_chained_constraints_fire_through_introduced_predicate():
    """An introduction enables a later constraint whose antecedent was absent."""
    first = SemanticConstraint.build(
        "r1",
        [Predicate.equals("cargo.category", "perishable")],
        Predicate.equals("cargo.desc", "frozen food"),
        anchor_classes={"cargo"},
    )
    second = SemanticConstraint.build(
        "r2",
        [Predicate.equals("cargo.desc", "frozen food")],
        Predicate.selection("cargo.quantity", "<=", 100),
        anchor_classes={"cargo"},
    )
    query = make_query(
        [Predicate.equals("cargo.category", "perishable")], ["cargo"]
    )
    engine, trace, table = run_engine(query, [first, second])
    assert engine.stats.fired == 2
    quantity = Predicate.selection("cargo.quantity", "<=", 100).normalized()
    assert engine.final_tags()[quantity] is PredicateTag.REDUNDANT
    # The column update flipped r2's antecedent cell to present.
    assert table.get("r2", Predicate.equals("cargo.desc", "frozen food")) in (
        CellTag.PRESENT_REDUNDANT,
        CellTag.PRESENT_OPTIONAL,
        CellTag.PRESENT_ANTECEDENT,
    )


def test_duplicate_firings_are_skipped():
    """Two constraints implying the same present predicate: the second is a no-op."""
    a = SemanticConstraint.build(
        "a",
        [Predicate.equals("cargo.category", "perishable")],
        Predicate.equals("cargo.desc", "frozen food"),
        anchor_classes={"cargo"},
    )
    b = SemanticConstraint.build(
        "b",
        [Predicate.selection("cargo.quantity", ">=", 10)],
        Predicate.equals("cargo.desc", "frozen food"),
        anchor_classes={"cargo"},
    )
    query = make_query(
        [
            Predicate.equals("cargo.category", "perishable"),
            Predicate.selection("cargo.quantity", ">=", 10),
            Predicate.equals("cargo.desc", "frozen food"),
        ],
        ["cargo"],
    )
    engine, _trace, _table = run_engine(query, [a, b])
    # Both lower to OPTIONAL; the second firing is skipped as already lowered.
    assert engine.stats.fired + engine.stats.skipped_already_lowered == 2
    assert engine.stats.fired == 1


def test_transformation_budget_limits_firings():
    constraints = [
        SemanticConstraint.build(
            f"r{i}",
            [Predicate.equals("cargo.category", "perishable")],
            Predicate.selection("cargo.quantity", ">=", i),
            anchor_classes={"cargo"},
        )
        for i in range(1, 6)
    ]
    query = make_query(
        [Predicate.equals("cargo.category", "perishable")], ["cargo"]
    )
    schema = build_evaluation_schema()
    init = initialize(query, constraints)
    engine = TransformationEngine(init.table, schema, transformation_budget=2)
    engine.run()
    assert engine.stats.fired == 2
    assert engine.stats.budget_exhausted


def test_tags_only_ever_go_down():
    """After an intra-class redundant firing, an inter-class rule cannot raise it."""
    intra = SemanticConstraint.build(
        "intra",
        [Predicate.equals("cargo.category", "perishable")],
        Predicate.selection("cargo.quantity", "<=", 100),
        anchor_classes={"cargo"},
    )
    inter = SemanticConstraint.build(
        "inter",
        [Predicate.equals("vehicle.desc", "refrigerated truck")],
        Predicate.selection("cargo.quantity", "<=", 100),
        anchor_classes={"cargo", "vehicle"},
        anchor_relationships={"collects"},
    )
    query = Query(
        projections=("cargo.code",),
        selective_predicates=(
            Predicate.equals("cargo.category", "perishable"),
            Predicate.equals("vehicle.desc", "refrigerated truck"),
            Predicate.selection("cargo.quantity", "<=", 100),
        ),
        relationships=("collects",),
        classes=("cargo", "vehicle"),
    )
    engine, _trace, _table = run_engine(query, [intra, inter])
    quantity = Predicate.selection("cargo.quantity", "<=", 100).normalized()
    assert engine.final_tags()[quantity] is PredicateTag.REDUNDANT
