"""Property-based tests for the core algorithm's invariants.

Three properties the paper claims (or relies on) are checked with hypothesis:

* **Order insensitivity** — presenting the relevant constraints in any order
  produces the same transformed query (the central claim of the paper).
* **Monotone lowering** — a predicate's final classification is never
  *above* its original classification (imperative for query predicates).
* **Answer preservation** — on a constraint-consistent database, the
  optimized query returns the same answer as the original for randomly
  chosen workload queries.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    OptimizerConfig,
    PredicateTag,
    SemanticQueryOptimizer,
    initialize,
    TransformationEngine,
)
from repro.data import (
    TABLE_4_1_SPECS,
    build_evaluation_constraints,
    build_evaluation_schema,
    build_evaluation_setup,
)
from repro.query import answers_match, structurally_equal

SCHEMA = build_evaluation_schema()
CONSTRAINTS = build_evaluation_constraints()
SETUP = build_evaluation_setup(TABLE_4_1_SPECS["DB1"], query_count=16, seed=23)
CLOSED = list(SETUP.repository.constraints())


def optimizer_with(constraints):
    return SemanticQueryOptimizer(
        SETUP.schema,
        constraints=constraints,
        cost_model=SETUP.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    query_index=st.integers(min_value=0, max_value=len(SETUP.queries) - 1),
    order=st.permutations(range(len(CLOSED))),
)
def test_constraint_order_does_not_change_the_result(query_index, order):
    query = SETUP.queries[query_index]
    reference = optimizer_with(CLOSED).optimize(query).optimized
    shuffled = [CLOSED[i] for i in order]
    permuted = optimizer_with(shuffled).optimize(query).optimized
    assert structurally_equal(reference, permuted)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(query_index=st.integers(min_value=0, max_value=len(SETUP.queries) - 1))
def test_final_tags_never_exceed_imperative(query_index):
    query = SETUP.queries[query_index]
    init = initialize(query, CLOSED)
    engine = TransformationEngine(init.table, SETUP.schema)
    engine.run()
    tags = engine.final_tags()
    original_keys = {p.normalized().key() for p in query.predicates()}
    for predicate, tag in tags.items():
        assert tag in (
            PredicateTag.IMPERATIVE,
            PredicateTag.OPTIONAL,
            PredicateTag.REDUNDANT,
        )
        if predicate.normalized().key() not in original_keys:
            # Introduced predicates can never be imperative.
            assert tag is not PredicateTag.IMPERATIVE


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(query_index=st.integers(min_value=0, max_value=len(SETUP.queries) - 1))
def test_optimized_queries_preserve_answers_property(query_index):
    query = SETUP.queries[query_index]
    result = optimizer_with(CLOSED).optimize(query)
    assert answers_match(SETUP.schema, SETUP.store, query, result.optimized)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    query_index=st.integers(min_value=0, max_value=len(SETUP.queries) - 1),
    budget=st.integers(min_value=0, max_value=4),
)
def test_budgeted_runs_stay_sound(query_index, budget):
    """Any transformation budget still yields an answer-preserving query."""
    query = SETUP.queries[query_index]
    optimizer = SemanticQueryOptimizer(
        SETUP.schema,
        constraints=CLOSED,
        cost_model=SETUP.cost_model,
        config=OptimizerConfig(
            transformation_budget=budget, record_access_statistics=False
        ),
    )
    result = optimizer.optimize(query)
    assert answers_match(SETUP.schema, SETUP.store, query, result.optimized)
