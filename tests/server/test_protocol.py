"""Tests for the gateway wire protocol (framing, parsing, payloads)."""

import json

import pytest

from repro.server.errors import ProtocolError
from repro.server.protocol import (
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
    parse_rule,
)

QUERY = (
    '(SELECT {cargo.code} { } {vehicle.desc = "refrigerated truck"} '
    "{collects} {cargo, vehicle})"
)


def test_frame_roundtrip():
    frame = {"id": 3, "op": "stats"}
    assert decode_frame(encode_frame(frame).strip()) == frame


def test_encode_frame_is_one_line():
    encoded = encode_frame({"id": 1, "op": "execute", "query": QUERY})
    assert encoded.endswith(b"\n")
    assert encoded.count(b"\n") == 1


@pytest.mark.parametrize(
    "line",
    [b"not json", b"[1, 2, 3]", b'"a string"', b"\xff\xfe"],
)
def test_decode_frame_rejects_malformed(line):
    with pytest.raises(ProtocolError):
        decode_frame(line)


def test_parse_request_optimize(evaluation_schema):
    request = parse_request(
        {"id": 9, "op": "optimize", "query": QUERY}, evaluation_schema
    )
    assert request.op == "optimize"
    assert request.id == 9
    assert tuple(request.query.classes) == ("cargo", "vehicle")


def test_parse_request_unknown_op(evaluation_schema):
    with pytest.raises(ProtocolError, match="unknown op"):
        parse_request({"op": "drop_tables"}, evaluation_schema)


def test_parse_request_missing_query(evaluation_schema):
    with pytest.raises(ProtocolError, match="query"):
        parse_request({"op": "execute"}, evaluation_schema)


def test_parse_request_invalid_query_text(evaluation_schema):
    with pytest.raises(ProtocolError, match="invalid query"):
        parse_request({"op": "execute", "query": "(SELECT {junk"}, evaluation_schema)


def test_parse_request_schema_validation(evaluation_schema):
    bad = '(SELECT {nosuch.attr} { } { } { } {nosuch})'
    with pytest.raises(ProtocolError, match="invalid query"):
        parse_request({"op": "optimize", "query": bad}, evaluation_schema)


def test_parse_request_rejects_unknown_option(evaluation_schema):
    with pytest.raises(ProtocolError, match="unknown option"):
        parse_request(
            {"op": "execute", "query": QUERY, "options": {"turbo": True}},
            evaluation_schema,
        )


@pytest.mark.parametrize(
    "options,message",
    [
        ({"execution_mode": "warp"}, "unknown execution mode"),
        ({"workers": 0}, "workers"),
        ({"workers": "four"}, "workers"),
        ({"timeout": -1}, "timeout"),
        ({"optimize": "yes"}, "optimize"),
        ({"join_strategy": "merge"}, "join_strategy"),
    ],
)
def test_parse_request_rejects_bad_option_values(
    evaluation_schema, options, message
):
    with pytest.raises(ProtocolError, match=message):
        parse_request(
            {"op": "execute", "query": QUERY, "options": options},
            evaluation_schema,
        )


def test_parse_request_batch(evaluation_schema):
    request = parse_request(
        {"op": "execute_batch", "queries": [QUERY, QUERY]}, evaluation_schema
    )
    assert len(request.queries) == 2


def test_parse_request_batch_rejects_empty(evaluation_schema):
    with pytest.raises(ProtocolError, match="non-empty"):
        parse_request({"op": "execute_batch", "queries": []}, evaluation_schema)


def test_options_key_ignores_timeout(evaluation_schema):
    with_timeout = parse_request(
        {
            "op": "execute",
            "query": QUERY,
            "options": {"execution_mode": "vectorized", "timeout": 5},
        },
        evaluation_schema,
    )
    without = parse_request(
        {
            "op": "execute",
            "query": QUERY,
            "options": {"execution_mode": "vectorized"},
        },
        evaluation_schema,
    )
    assert with_timeout.options_key() == without.options_key()


def test_parse_rule_builds_constraint(evaluation_schema):
    constraint = parse_rule(
        {
            "name": "wire1",
            "antecedents": ['cargo.desc = "frozen food"'],
            "consequent": "cargo.quantity <= 500",
            "classes": ["cargo"],
            "relationships": [],
            "description": "frozen food ships in small lots",
        },
        evaluation_schema,
    )
    assert constraint.name == "wire1"
    assert len(constraint.antecedents) == 1
    assert constraint.anchor_classes == frozenset({"cargo"})


@pytest.mark.parametrize(
    "spec",
    [
        "not a dict",
        {"consequent": "cargo.quantity <= 500"},  # missing name
        {"name": "r", "consequent": 5},
        {"name": "r", "consequent": "cargo.quantity <= 500", "antecedents": "x"},
        {"name": "r", "consequent": "???"},
        {"name": "r", "consequent": "cargo.quantity <= 500", "classes": [1]},
    ],
)
def test_parse_rule_rejects_malformed(evaluation_schema, spec):
    with pytest.raises(ProtocolError):
        parse_rule(spec, evaluation_schema)


def test_rules_request_parsing(evaluation_schema):
    add = parse_request(
        {
            "op": "rules",
            "action": "add",
            "rule": {"name": "r9", "consequent": "cargo.quantity >= 0"},
        },
        evaluation_schema,
    )
    assert add.action == "add" and add.rule.name == "r9"
    remove = parse_request(
        {"op": "rules", "action": "remove", "name": "r9"}, evaluation_schema
    )
    assert remove.action == "remove" and remove.rule_name == "r9"
    with pytest.raises(ProtocolError, match="action"):
        parse_request({"op": "rules", "action": "upsert"}, evaluation_schema)
    with pytest.raises(ProtocolError, match="name"):
        parse_request({"op": "rules", "action": "remove"}, evaluation_schema)


def test_response_frames_are_json_serializable():
    ok = ok_response(5, {"rows": []})
    assert ok["ok"] is True and ok["id"] == 5
    err = error_response(6, ProtocolError("bad frame"))
    assert err["ok"] is False
    assert err["error"]["code"] == "protocol_error"
    json.dumps(ok), json.dumps(err)
