"""Tests for the gateway wire protocol (framing, parsing, payloads)."""

import json

import pytest

from repro.server.errors import ProtocolError
from repro.server.protocol import (
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
    parse_rule,
)

QUERY = (
    '(SELECT {cargo.code} { } {vehicle.desc = "refrigerated truck"} '
    "{collects} {cargo, vehicle})"
)


def test_frame_roundtrip():
    frame = {"id": 3, "op": "stats"}
    assert decode_frame(encode_frame(frame).strip()) == frame


def test_encode_frame_is_one_line():
    encoded = encode_frame({"id": 1, "op": "execute", "query": QUERY})
    assert encoded.endswith(b"\n")
    assert encoded.count(b"\n") == 1


@pytest.mark.parametrize(
    "line",
    [b"not json", b"[1, 2, 3]", b'"a string"', b"\xff\xfe"],
)
def test_decode_frame_rejects_malformed(line):
    with pytest.raises(ProtocolError):
        decode_frame(line)


def test_parse_request_optimize(evaluation_schema):
    request = parse_request(
        {"id": 9, "op": "optimize", "query": QUERY}, evaluation_schema
    )
    assert request.op == "optimize"
    assert request.id == 9
    assert tuple(request.query.classes) == ("cargo", "vehicle")


def test_parse_request_unknown_op(evaluation_schema):
    with pytest.raises(ProtocolError, match="unknown op"):
        parse_request({"op": "drop_tables"}, evaluation_schema)


def test_parse_request_missing_query(evaluation_schema):
    with pytest.raises(ProtocolError, match="query"):
        parse_request({"op": "execute"}, evaluation_schema)


def test_parse_request_invalid_query_text(evaluation_schema):
    with pytest.raises(ProtocolError, match="invalid query"):
        parse_request({"op": "execute", "query": "(SELECT {junk"}, evaluation_schema)


def test_parse_request_schema_validation(evaluation_schema):
    bad = '(SELECT {nosuch.attr} { } { } { } {nosuch})'
    with pytest.raises(ProtocolError, match="invalid query"):
        parse_request({"op": "optimize", "query": bad}, evaluation_schema)


def test_parse_request_rejects_unknown_option(evaluation_schema):
    with pytest.raises(ProtocolError, match="unknown option"):
        parse_request(
            {"op": "execute", "query": QUERY, "options": {"turbo": True}},
            evaluation_schema,
        )


@pytest.mark.parametrize(
    "options,message",
    [
        ({"execution_mode": "warp"}, "unknown execution mode"),
        ({"workers": 0}, "workers"),
        ({"workers": "four"}, "workers"),
        ({"timeout": -1}, "timeout"),
        ({"optimize": "yes"}, "optimize"),
        ({"join_strategy": "merge"}, "join_strategy"),
    ],
)
def test_parse_request_rejects_bad_option_values(
    evaluation_schema, options, message
):
    with pytest.raises(ProtocolError, match=message):
        parse_request(
            {"op": "execute", "query": QUERY, "options": options},
            evaluation_schema,
        )


def test_parse_request_batch(evaluation_schema):
    request = parse_request(
        {"op": "execute_batch", "queries": [QUERY, QUERY]}, evaluation_schema
    )
    assert len(request.queries) == 2


def test_parse_request_batch_rejects_empty(evaluation_schema):
    with pytest.raises(ProtocolError, match="non-empty"):
        parse_request({"op": "execute_batch", "queries": []}, evaluation_schema)


def test_options_key_ignores_timeout(evaluation_schema):
    with_timeout = parse_request(
        {
            "op": "execute",
            "query": QUERY,
            "options": {"execution_mode": "vectorized", "timeout": 5},
        },
        evaluation_schema,
    )
    without = parse_request(
        {
            "op": "execute",
            "query": QUERY,
            "options": {"execution_mode": "vectorized"},
        },
        evaluation_schema,
    )
    assert with_timeout.options_key() == without.options_key()


def test_parse_rule_builds_constraint(evaluation_schema):
    constraint = parse_rule(
        {
            "name": "wire1",
            "antecedents": ['cargo.desc = "frozen food"'],
            "consequent": "cargo.quantity <= 500",
            "classes": ["cargo"],
            "relationships": [],
            "description": "frozen food ships in small lots",
        },
        evaluation_schema,
    )
    assert constraint.name == "wire1"
    assert len(constraint.antecedents) == 1
    assert constraint.anchor_classes == frozenset({"cargo"})


@pytest.mark.parametrize(
    "spec",
    [
        "not a dict",
        {"consequent": "cargo.quantity <= 500"},  # missing name
        {"name": "r", "consequent": 5},
        {"name": "r", "consequent": "cargo.quantity <= 500", "antecedents": "x"},
        {"name": "r", "consequent": "???"},
        {"name": "r", "consequent": "cargo.quantity <= 500", "classes": [1]},
    ],
)
def test_parse_rule_rejects_malformed(evaluation_schema, spec):
    with pytest.raises(ProtocolError):
        parse_rule(spec, evaluation_schema)


def test_rules_request_parsing(evaluation_schema):
    add = parse_request(
        {
            "op": "rules",
            "action": "add",
            "rule": {"name": "r9", "consequent": "cargo.quantity >= 0"},
        },
        evaluation_schema,
    )
    assert add.action == "add" and add.rule.name == "r9"
    remove = parse_request(
        {"op": "rules", "action": "remove", "name": "r9"}, evaluation_schema
    )
    assert remove.action == "remove" and remove.rule_name == "r9"
    with pytest.raises(ProtocolError, match="action"):
        parse_request({"op": "rules", "action": "upsert"}, evaluation_schema)
    with pytest.raises(ProtocolError, match="name"):
        parse_request({"op": "rules", "action": "remove"}, evaluation_schema)


def test_response_frames_are_json_serializable():
    ok = ok_response(5, {"rows": []})
    assert ok["ok"] is True and ok["id"] == 5
    err = error_response(6, ProtocolError("bad frame"))
    assert err["ok"] is False
    assert err["error"]["code"] == "protocol_error"
    json.dumps(ok), json.dumps(err)


# ----------------------------------------------------------------------
# Mutation ops: parsing contract
# ----------------------------------------------------------------------
def test_parse_request_mutations(evaluation_schema):
    insert = parse_request(
        {"op": "insert", "class": "cargo", "values": {"code": "X"}},
        evaluation_schema,
    )
    assert insert.class_name == "cargo" and insert.values == {"code": "X"}
    update = parse_request(
        {"op": "update", "class": "cargo", "oid": 3, "values": {"quantity": 1}},
        evaluation_schema,
    )
    assert update.oid == 3
    delete = parse_request(
        {"op": "delete", "class": "cargo", "oid": 9}, evaluation_schema
    )
    assert delete.oid == 9
    many = parse_request(
        {"op": "insert_many", "class": "cargo", "rows": [{"code": "A"}, {}]},
        evaluation_schema,
    )
    assert len(many.rows) == 2


@pytest.mark.parametrize(
    "frame",
    [
        {"op": "insert"},  # missing class
        {"op": "insert", "class": "warehouse", "values": {}},  # unknown class
        {"op": "insert", "class": "cargo", "values": {"colour": "red"}},
        {"op": "insert", "class": "cargo", "values": [1, 2]},
        {"op": "update", "class": "cargo", "values": {"code": "X"}},  # no oid
        {"op": "update", "class": "cargo", "oid": 0, "values": {}},
        {"op": "update", "class": "cargo", "oid": True, "values": {}},
        {"op": "delete", "class": "cargo"},
        {"op": "insert_many", "class": "cargo", "rows": []},
        {"op": "insert_many", "class": "cargo", "rows": "not a list"},
        {"op": "insert_many", "class": "cargo",
         "rows": [{"code": "A"}, {"bogus": 1}]},
    ],
)
def test_parse_request_rejects_malformed_mutations(evaluation_schema, frame):
    with pytest.raises(ProtocolError):
        parse_request(frame, evaluation_schema)


def test_insert_many_row_bound(evaluation_schema):
    from repro.server.protocol import MAX_MUTATION_ROWS

    rows = [{} for _ in range(MAX_MUTATION_ROWS + 1)]
    with pytest.raises(ProtocolError, match="bound"):
        parse_request(
            {"op": "insert_many", "class": "cargo", "rows": rows},
            evaluation_schema,
        )


# ----------------------------------------------------------------------
# Seeded frame fuzzer: every frame yields a stable wire code
# ----------------------------------------------------------------------
import asyncio
import os
import random

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "47110815"))
FUZZ_FRAMES = int(os.environ.get("REPRO_FUZZ_FRAMES", "250"))

#: The complete closed set of codes a response may carry.  ``internal`` is
#: deliberately excluded: a fuzzer-reachable internal error is a bug.
STABLE_CODES = {
    "protocol_error",
    "mutation_error",
    "overloaded",
    "client_queue_full",
    "draining",
    "timeout",
}


def _fuzz_frame(rng: random.Random) -> bytes:
    """One adversarial wire line aimed at the mutation ops."""
    import json as _json

    op = rng.choice(["insert", "insert_many", "update", "delete"])
    frame = {"id": rng.randrange(1000), "op": op}
    if rng.random() < 0.8:
        frame["class"] = rng.choice(
            ["cargo", "vehicle", "warehouse", "", 7, None, ["cargo"]]
        )
    if rng.random() < 0.8:
        frame["oid"] = rng.choice([1, 0, -4, 2**63, "seven", True, None, 3.5])
    if rng.random() < 0.8:
        frame["values"] = rng.choice(
            [
                {"code": "X"},
                {"colour": "red"},
                {"quantity": float("inf")} if rng.random() < 0.5 else {"code": 1},
                {7: "bad-key"},
                [],
                "values",
                None,
            ]
        )
    if rng.random() < 0.5:
        frame["rows"] = rng.choice(
            [[], [{}], [{"code": "A"}, "junk"], [{"bogus": 1}], "rows", 42]
        )
    try:
        line = _json.dumps(frame).encode("utf-8")
    except (TypeError, ValueError):
        line = repr(frame).encode("utf-8")
    # Structural corruption: truncate, append garbage, or break encoding.
    roll = rng.random()
    if roll < 0.25:
        line = line[: rng.randrange(max(1, len(line)))]
    elif roll < 0.35:
        line = line + b"}}junk{{"
    elif roll < 0.40:
        line = b"\xff\xfe" + line
    return line


def test_mutation_frame_fuzzer_yields_stable_codes(evaluation_schema):
    """No fuzzed mutation frame may drop the dispatcher or leak an error."""
    from repro.constraints import ConstraintRepository
    from repro.data import build_evaluation_constraints
    from repro.engine import ObjectStore
    from repro.server import QueryGateway
    from repro.service import OptimizationService

    store = ObjectStore(evaluation_schema, shard_count=2)
    store.insert("cargo", {"code": "C0", "desc": "x", "quantity": 1,
                           "category": "general"})
    repository = ConstraintRepository(evaluation_schema)
    repository.add_all(build_evaluation_constraints())
    service = OptimizationService(
        evaluation_schema, repository=repository, store=store
    )
    rng = random.Random(FUZZ_SEED)
    frames = [_fuzz_frame(rng) for _ in range(FUZZ_FRAMES)]

    async def drive():
        gateway = QueryGateway(service)
        outcomes = []
        for line in frames:
            response = await gateway.dispatch_line(line, "fuzzer")
            outcomes.append(response)
        # The dispatcher survived every frame: a well-formed request still
        # succeeds afterwards.
        ok = await gateway.dispatch(
            {"id": 1, "op": "insert", "class": "cargo",
             "values": {"code": "SANE"}},
            "fuzzer",
        )
        await gateway.stop()
        return outcomes, ok

    outcomes, ok = asyncio.run(drive())
    assert ok["ok"], ok
    for line, response in zip(frames, outcomes):
        assert isinstance(response, dict), line
        assert "ok" in response, line
        if not response["ok"]:
            code = response["error"]["code"]
            assert code in STABLE_CODES, (code, line)


def test_fuzzed_frames_over_tcp_keep_the_connection(evaluation_schema):
    """Malformed/truncated frames answered over TCP; session stays usable."""
    from repro.constraints import ConstraintRepository
    from repro.data import build_evaluation_constraints
    from repro.engine import ObjectStore
    from repro.server import QueryGateway
    from repro.server.protocol import encode_frame
    from repro.service import OptimizationService

    store = ObjectStore(evaluation_schema)
    store.insert("cargo", {"code": "C0", "desc": "x", "quantity": 1,
                           "category": "general"})
    repository = ConstraintRepository(evaluation_schema)
    repository.add_all(build_evaluation_constraints())
    service = OptimizationService(
        evaluation_schema, repository=repository, store=store
    )
    rng = random.Random(FUZZ_SEED + 1)
    garbage = [
        line for line in (_fuzz_frame(rng) for _ in range(40)) if b"\n" not in line
    ]

    async def drive():
        gateway = QueryGateway(service)
        host, port = await gateway.start()
        reader, writer = await asyncio.open_connection(host, port)
        for line in garbage:
            writer.write(line + b"\n")
        # A valid frame after the garbage must still be answered.
        writer.write(
            encode_frame({"id": "tail", "op": "insert", "class": "cargo",
                          "values": {"code": "TAIL"}})
        )
        await writer.drain()
        responses = []
        for _ in range(len(garbage) + 1):
            response = await asyncio.wait_for(reader.readline(), 10)
            assert response, "connection dropped on a fuzzed frame"
            responses.append(decode_frame(response))
        writer.close()
        await writer.wait_closed()
        await gateway.stop()
        return responses

    responses = asyncio.run(drive())
    tail = [r for r in responses if r.get("id") == "tail"]
    assert tail and tail[0]["ok"], responses
    for response in responses:
        if not response.get("ok"):
            assert response["error"]["code"] in STABLE_CODES, response


def test_mutation_frames_validate_and_carry_options(evaluation_schema):
    request = parse_request(
        {"op": "delete", "class": "cargo", "oid": 1, "options": {"timeout": 0.5}},
        evaluation_schema,
    )
    assert request.options == {"timeout": 0.5}
    with pytest.raises(ProtocolError, match="unknown option"):
        parse_request(
            {"op": "insert", "class": "cargo", "values": {},
             "options": {"turbo": True}},
            evaluation_schema,
        )
    with pytest.raises(ProtocolError, match="timeout"):
        parse_request(
            {"op": "insert", "class": "cargo", "values": {},
             "options": {"timeout": -1}},
            evaluation_schema,
        )
