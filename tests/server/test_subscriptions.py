"""Wire-level subscription lifecycle: subscribe → diffs → unsubscribe.

Pins the serving contract of the push path: a ``subscribe`` snapshot
followed by version-ordered ``diff`` frames that fold to the fresh
result, standing plans freed by *both* ``unsubscribe`` and client
disconnect (asserted through gateway stats), rule churn surfacing as a
``resync`` frame, and malformed subscribe frames mapping to stable wire
codes without taking the session down.
"""

import asyncio

import pytest

from repro.constraints import ConstraintRepository
from repro.data import build_evaluation_constraints
from repro.engine import ObjectStore
from repro.server import AsyncGatewayClient, GatewayRequestError, QueryGateway
from repro.service import OptimizationService
from repro.subscriptions import apply_changes

QUERY = '(SELECT {cargo.code, cargo.quantity} { } {cargo.quantity >= 30} { } {cargo})'


@pytest.fixture()
def mutable_service(evaluation_schema):
    """A service over its own 2-shard store (never the shared fixture store)."""
    store = ObjectStore(evaluation_schema, shard_count=2)
    for i in range(4):
        store.insert(
            "cargo",
            {"code": f"C{i}", "desc": "frozen food", "quantity": 20 + 10 * i,
             "category": "general"},
        )
    repository = ConstraintRepository(evaluation_schema)
    repository.add_all(build_evaluation_constraints())
    service = OptimizationService(
        evaluation_schema, repository=repository, store=store
    )
    yield service, store
    service.close()


def _row(code, quantity):
    return {"code": code, "desc": "frozen food", "quantity": quantity,
            "category": "general"}


def test_subscribe_streams_version_ordered_diffs_over_tcp(mutable_service):
    service, _store = mutable_service

    async def scenario():
        gateway = QueryGateway(service)
        host, port = await gateway.start()
        client = await AsyncGatewayClient.connect(host, port)
        snapshot = await client.subscribe(QUERY)
        sid = snapshot["subscription"]
        # One matching insert, one filtered out by the compiled predicate
        # kernel (quantity < 30 can never join the result), one matching.
        await client.insert("cargo", _row("PUSH1", 77))
        await client.insert("cargo", _row("QUIET", 5))
        await client.insert("cargo", _row("PUSH2", 44))
        frames = [await client.next_push(sid, timeout=5) for _ in range(2)]
        fresh = await client.execute(QUERY)
        stats = await client.stats()
        await client.close()
        await gateway.stop()
        return snapshot, frames, fresh, stats

    snapshot, frames, fresh, stats = asyncio.run(scenario())
    assert snapshot["row_count"] == len(snapshot["rows"]) == 3
    assert all(frame["push"] == "diff" for frame in frames)
    assert all(frame["subscription"] == snapshot["subscription"] for frame in frames)
    # Strictly increasing versions, all past the snapshot's.
    versions = [frame["version"] for frame in frames]
    assert versions == sorted(versions) and len(set(versions)) == len(versions)
    assert all(version > snapshot["version"] for version in versions)
    rows = snapshot["rows"]
    for frame in frames:
        rows = apply_changes(rows, frame["changes"])
    assert rows == fresh["rows"]
    codes = {row["cargo.code"] for row in rows}
    assert {"PUSH1", "PUSH2"} <= codes and "QUIET" not in codes
    # The filtered insert produced no frame; the view counted it.
    subs = stats["subscriptions"]
    assert subs["diffs"] == 2
    assert subs["views"][0]["filtered"] >= 1


def test_unsubscribe_frees_the_standing_plan(mutable_service):
    service, _store = mutable_service

    async def scenario():
        gateway = QueryGateway(service)
        client = AsyncGatewayClient.in_process(gateway)
        snapshot = await client.subscribe(QUERY)
        during = await client.stats()
        dropped = await client.unsubscribe(snapshot["subscription"])
        after = await client.stats()
        # A mutation after unsubscribe reaches no consumer.
        await client.insert("cargo", _row("LATE", 99))
        with pytest.raises(asyncio.TimeoutError):
            await client.next_push(snapshot["subscription"], timeout=0.2)
        await gateway.stop()
        return during, dropped, after

    during, dropped, after = asyncio.run(scenario())
    assert during["subscriptions"]["active"] == 1
    assert during["subscriptions"]["channels"] == 1
    assert dropped["active"] == 0
    assert after["subscriptions"]["active"] == 0
    assert after["subscriptions"]["channels"] == 0
    assert after["subscriptions"]["created"] == 1
    assert after["subscriptions"]["closed"] == 1


def test_client_disconnect_frees_the_standing_plan(mutable_service):
    service, _store = mutable_service

    async def scenario():
        gateway = QueryGateway(service)
        host, port = await gateway.start()
        client = await AsyncGatewayClient.connect(host, port)
        await client.subscribe(QUERY)
        before = gateway.stats_payload()["subscriptions"]
        await client.close()
        # The session close runs on the server loop; poll briefly.
        for _ in range(100):
            after = gateway.stats_payload()["subscriptions"]
            if after["active"] == 0:
                break
            await asyncio.sleep(0.02)
        await gateway.stop()
        return before, after

    before, after = asyncio.run(scenario())
    assert before["active"] == 1
    assert after["active"] == 0
    assert after["channels"] == 0
    assert after["closed"] == 1


def test_rule_churn_pushes_a_resync_frame(mutable_service):
    service, _store = mutable_service
    service.enable_dynamic_rules(class_names=["cargo"])

    async def scenario():
        gateway = QueryGateway(service)
        client = AsyncGatewayClient.in_process(gateway)
        snapshot = await client.subscribe(QUERY)
        sid = snapshot["subscription"]
        # Far outside every observed bound: the cargo rules re-derive,
        # which must resync (re-optimize) rather than diff.
        await client.insert("cargo", _row("HUGE", 10_000))
        frame = await client.next_push(sid, timeout=5)
        fresh = await client.execute(QUERY)
        await gateway.stop()
        return frame, fresh

    frame, fresh = asyncio.run(scenario())
    assert frame["push"] == "resync"
    assert frame["reason"] == "rules_changed"
    assert frame["rows"] == fresh["rows"]
    assert any(row["cargo.code"] == "HUGE" for row in frame["rows"])


def test_malformed_subscribe_frames_keep_the_session_alive(mutable_service):
    service, _store = mutable_service

    async def scenario():
        gateway = QueryGateway(service, max_subscriptions=1)
        host, port = await gateway.start()
        client = await AsyncGatewayClient.connect(host, port)
        outcomes = {}
        for label, frame in [
            ("missing_query", {"op": "subscribe"}),
            ("bad_query", {"op": "subscribe", "query": "(SELECT {junk"}),
            ("missing_id", {"op": "unsubscribe"}),
            ("empty_id", {"op": "unsubscribe", "subscription": ""}),
            ("unknown_id", {"op": "unsubscribe", "subscription": "sub-404"}),
        ]:
            try:
                await client.request(dict(frame))
            except GatewayRequestError as exc:
                outcomes[label] = exc.code
        snapshot = await client.subscribe(QUERY)
        try:
            await client.subscribe(QUERY)
        except GatewayRequestError as exc:
            outcomes["over_limit"] = exc.code
        # None of the failures took the connection down.
        rows = await client.execute(QUERY)
        stats = await client.stats()
        await client.unsubscribe(snapshot["subscription"])
        await client.close()
        await gateway.stop()
        return outcomes, rows, stats

    outcomes, rows, stats = asyncio.run(scenario())
    assert outcomes == {
        "missing_query": "protocol_error",
        "bad_query": "protocol_error",
        "missing_id": "protocol_error",
        "empty_id": "protocol_error",
        "unknown_id": "subscription_unknown",
        "over_limit": "subscription_limit",
    }
    assert rows["row_count"] > 0
    assert stats["subscriptions"]["active"] == 1
