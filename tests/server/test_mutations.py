"""Mutation RPCs end to end: gateway → service → (sharded) store.

Pins the acceptance contract of the live write path: an ``execute``
immediately after a mutation RPC observes the post-write rows (no stale
cache or stale single-flight hit), failures map to stable wire codes, and
the reported invalidation footprint (shards, versions, rule refreshes) is
truthful.
"""

import asyncio

import pytest

from repro.constraints import ConstraintRepository
from repro.data import build_evaluation_constraints
from repro.engine import ObjectStore
from repro.server import AsyncGatewayClient, GatewayRequestError, QueryGateway
from repro.service import OptimizationService

QUERY = '(SELECT {cargo.code, cargo.quantity} { } {cargo.quantity >= 0} { } {cargo})'
JOIN_QUERY = (
    '(SELECT {cargo.code, vehicle.desc} { } '
    '{vehicle.desc = "refrigerated truck"} {collects} {cargo, vehicle})'
)


@pytest.fixture()
def mutable_service(evaluation_schema):
    """A service over its own 2-shard store (never the shared fixture store)."""
    store = ObjectStore(evaluation_schema, shard_count=2)
    store.insert(
        "vehicle",
        {"vehicle_no": "V0", "desc": "refrigerated truck", "class": 2,
         "capacity": 4000},
    )
    for i in range(6):
        store.insert(
            "cargo",
            {"code": f"C{i}", "desc": "frozen food", "quantity": 100 + i,
             "category": "general", "collects": 1},
        )
    repository = ConstraintRepository(evaluation_schema)
    repository.add_all(build_evaluation_constraints())
    service = OptimizationService(
        evaluation_schema, repository=repository, store=store
    )
    yield service, store
    service.close()


def test_execute_after_mutation_sees_post_write_rows(mutable_service):
    service, store = mutable_service

    async def scenario():
        gateway = QueryGateway(service)
        client = AsyncGatewayClient.in_process(gateway)
        before = await client.execute(QUERY)
        inserted = await client.insert(
            "cargo",
            {"code": "LIVE", "desc": "frozen food", "quantity": 999,
             "category": "general", "collects": 1},
        )
        after = await client.execute(QUERY)
        joined = await client.execute(JOIN_QUERY)
        await gateway.stop()
        return before, inserted, after, joined

    before, inserted, after, joined = asyncio.run(scenario())
    assert after["row_count"] == before["row_count"] + 1
    assert not after["coalesced"]
    codes = {row["cargo.code"] for row in after["rows"]}
    assert "LIVE" in codes
    assert any(row["cargo.code"] == "LIVE" for row in joined["rows"])
    # The reported footprint matches the store: one write, one shard moved.
    assert inserted["applied"] == 1
    assert inserted["oids"] == [store.count("cargo")]  # OIDs are per-class
    assert inserted["shards"] == [store.shard_of(inserted["oids"][0])]
    assert inserted["store_version"] == store.version


def test_update_and_delete_round_trip(mutable_service):
    service, store = mutable_service

    async def scenario():
        gateway = QueryGateway(service)
        client = AsyncGatewayClient.in_process(gateway)
        updated = await client.update("cargo", 3, {"quantity": 42})
        rows = (await client.execute(QUERY))["rows"]
        deleted = await client.delete("cargo", 3)
        remaining = (await client.execute(QUERY))["rows"]
        await gateway.stop()
        return updated, rows, deleted, remaining

    updated, rows, deleted, remaining = asyncio.run(scenario())
    assert updated["oids"] == [3] and deleted["oids"] == [3]
    assert any(row["cargo.quantity"] == 42 for row in rows)
    assert all(row["cargo.code"] != "C2" for row in remaining)
    assert store.get("cargo", 3) is None


def test_insert_many_applies_in_order(mutable_service):
    service, store = mutable_service

    async def scenario():
        gateway = QueryGateway(service)
        client = AsyncGatewayClient.in_process(gateway)
        payload = await client.insert_many(
            "cargo",
            [
                {"code": "B0", "desc": "textiles", "quantity": 1,
                 "category": "general"},
                {"code": "B1", "desc": "textiles", "quantity": 2,
                 "category": "general"},
                {"code": "B2", "desc": "textiles", "quantity": 3,
                 "category": "general"},
            ],
        )
        await gateway.stop()
        return payload

    payload = asyncio.run(scenario())
    assert payload["applied"] == 3
    assert payload["oids"] == sorted(payload["oids"])
    assert sorted(payload["shard_versions"]) == sorted(store.shard_versions())
    assert [store.get("cargo", oid).values["code"] for oid in payload["oids"]] == [
        "B0", "B1", "B2",
    ]


def test_mutation_error_codes_are_stable(mutable_service):
    service, _store = mutable_service

    async def scenario():
        gateway = QueryGateway(service)
        client = AsyncGatewayClient.in_process(gateway)
        outcomes = {}
        for label, frame in [
            ("unknown_class", {"op": "insert", "class": "warehouse", "values": {}}),
            ("unknown_attr", {"op": "insert", "class": "cargo",
                              "values": {"colour": "red"}}),
            ("bad_oid", {"op": "delete", "class": "cargo", "oid": "seven"}),
            ("missing_rows", {"op": "insert_many", "class": "cargo"}),
            ("unknown_oid", {"op": "delete", "class": "cargo", "oid": 10_000}),
        ]:
            try:
                await client.request(dict(frame))
            except GatewayRequestError as exc:
                outcomes[label] = exc.code
        # A mutation error never takes the session down: reads still work.
        rows = await client.execute(QUERY)
        await gateway.stop()
        return outcomes, rows

    outcomes, rows = asyncio.run(scenario())
    assert outcomes == {
        "unknown_class": "protocol_error",
        "unknown_attr": "protocol_error",
        "bad_oid": "protocol_error",
        "missing_rows": "protocol_error",
        "unknown_oid": "mutation_error",
    }
    assert rows["row_count"] > 0


def test_mutation_refreshes_dynamic_rules_per_class(mutable_service):
    service, _store = mutable_service
    service.enable_dynamic_rules()

    async def scenario():
        gateway = QueryGateway(service)
        client = AsyncGatewayClient.in_process(gateway)
        # Outside every observed bound: the cargo rules must be re-derived.
        loud = await client.insert(
            "cargo",
            {"code": "HUGE", "desc": "frozen food", "quantity": 10_000,
             "category": "general"},
        )
        stats = await client.stats()
        await gateway.stop()
        return loud, stats

    loud, stats = asyncio.run(scenario())
    assert loud["rules_refreshed"] == 1
    assert loud["rules_changed"] is True
    assert loud["generation"] == stats["service"]["repository"]["generation"]
    assert stats["service"]["mutations_applied"] == 1


def test_mutations_over_tcp(mutable_service):
    service, _store = mutable_service

    async def scenario():
        gateway = QueryGateway(service)
        host, port = await gateway.start()
        client = await AsyncGatewayClient.connect(host, port)
        inserted = await client.insert(
            "cargo",
            {"code": "TCP", "desc": "textiles", "quantity": 7,
             "category": "general"},
        )
        after = await client.execute(QUERY)
        await client.close()
        await gateway.stop()
        return inserted, after

    inserted, after = asyncio.run(scenario())
    assert inserted["applied"] == 1
    assert any(row["cargo.code"] == "TCP" for row in after["rows"])


def test_mixed_read_write_load_is_error_free(mutable_service):
    """Concurrent reads and writes through the gateway: no errors, no
    torn reads — every response is either pre- or post-some-write state."""
    from repro.server import MutationMix, run_load

    service, store = mutable_service
    before = store.count("cargo")

    async def scenario():
        gateway = QueryGateway(service, worker_threads=4)
        host, port = await gateway.start()
        clients = [
            await AsyncGatewayClient.connect(host, port, client_id=f"c{i}")
            for i in range(4)
        ]
        try:
            report = await run_load(
                clients,
                [QUERY, JOIN_QUERY],
                requests_per_client=12,
                mutations=MutationMix(
                    every=4,
                    class_name="cargo",
                    values={"code": "w", "desc": "textiles", "quantity": 1,
                            "category": "general"},
                    unique_attributes=("code",),
                ),
            )
        finally:
            for client in clients:
                await client.close()
            await gateway.stop()
        return report

    report = asyncio.run(scenario())
    assert report.errors == 0, report.error_codes
    assert report.requests == 48
    assert report.mutations == 12
    assert store.count("cargo") == before + 12
    assert report.as_dict()["mutations"] == 12
