"""Shared fixtures for the gateway test suite.

Gateway tests run real asyncio event loops via ``asyncio.run`` inside
synchronous test functions (the suite has no async test plugin), against a
real service over the session-scoped DB1 evaluation setup.  Each test
builds its own service (with a fresh constraint repository, so rule
mutations never leak between tests) and its own gateway.
"""

import pytest

from repro.constraints import ConstraintRepository
from repro.query import format_query
from repro.server import QueryGateway
from repro.service import OptimizationService


@pytest.fixture()
def build_service(small_setup):
    """Factory for a fresh service over the shared DB1 store."""

    def build(**kwargs):
        repository = ConstraintRepository(small_setup.schema)
        repository.add_all(small_setup.constraints)
        return OptimizationService(
            small_setup.schema,
            repository=repository,
            cost_model=small_setup.cost_model,
            store=small_setup.store,
            **kwargs,
        )

    return build


@pytest.fixture()
def workload_texts(small_setup):
    """The DB1 workload queries as wire-format text."""
    return [format_query(query) for query in small_setup.queries]


class GatewayHarness:
    """Builds a started gateway inside a test's event loop."""

    def __init__(self, service, **kwargs):
        self.gateway = QueryGateway(service, **kwargs)

    async def __aenter__(self):
        await self.gateway.start()
        return self.gateway

    async def __aexit__(self, exc_type, exc_value, traceback):
        await self.gateway.stop()


@pytest.fixture()
def harness():
    """``async with harness(service, ...) as gateway`` in test coroutines."""
    return GatewayHarness
