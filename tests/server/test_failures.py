"""Gateway failure paths: malformed frames, disconnects, timeouts, drain.

These tests pin the containment properties the gateway docstrings promise:
a bad frame never kills a connection, an abandoned waiter (timeout or
disconnect) never cancels shared work or poisons the single-flight map,
and a draining gateway finishes what it admitted.
"""

import asyncio
import json
import time

import pytest

from repro.server import AsyncGatewayClient, GatewayRequestError
from repro.server.protocol import decode_frame, encode_frame


def _slow_execute(service, delay):
    """Make the service's execute sleep ``delay`` seconds (per call)."""
    original = service.execute

    def slowed(*args, **kwargs):
        time.sleep(delay)
        return original(*args, **kwargs)

    service.execute = slowed
    return original


def test_malformed_frame_keeps_connection_alive(
    build_service, workload_texts, harness
):
    async def scenario():
        service = build_service()
        async with harness(service) as gateway:
            host, port = gateway.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                error = decode_frame(await reader.readline())
                assert error["ok"] is False
                assert error["error"]["code"] == "protocol_error"
                assert error["id"] is None

                # Unknown op and bad query text are also per-frame errors.
                writer.write(encode_frame({"id": 1, "op": "nuke"}))
                writer.write(
                    encode_frame({"id": 2, "op": "execute", "query": "(junk"})
                )
                await writer.drain()
                codes = [
                    decode_frame(await reader.readline())["error"]["code"]
                    for _ in range(2)
                ]
                assert codes == ["protocol_error", "protocol_error"]

                # The same connection still serves valid requests.
                writer.write(
                    encode_frame(
                        {"id": 3, "op": "execute", "query": workload_texts[0]}
                    )
                )
                await writer.drain()
                response = decode_frame(await reader.readline())
                assert response["ok"] is True and response["id"] == 3
            finally:
                writer.close()
                await writer.wait_closed()

    asyncio.run(scenario())


def test_half_close_still_receives_responses(
    build_service, workload_texts, harness
):
    """EOF on the read side flushes pending responses before closing."""

    async def scenario():
        service = build_service()
        _slow_execute(service, 0.1)
        async with harness(service) as gateway:
            host, port = gateway.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                encode_frame({"id": 1, "op": "execute", "query": workload_texts[0]})
            )
            await writer.drain()
            writer.write_eof()  # done sending; still reading
            response = decode_frame(await reader.readline())
            assert response["ok"] is True and response["id"] == 1
            writer.close()
            await writer.wait_closed()

    asyncio.run(scenario())


def test_disconnect_mid_request_does_not_kill_shared_work(
    build_service, workload_texts, harness
):
    async def scenario():
        service = build_service()
        _slow_execute(service, 0.3)
        async with harness(service) as gateway:
            host, port = gateway.address
            leader = await AsyncGatewayClient.connect(host, port, "leader")
            follower = AsyncGatewayClient.in_process(gateway, "follower")

            leader_task = asyncio.ensure_future(
                leader.execute(workload_texts[0])
            )
            await asyncio.sleep(0.05)  # the leader's flight is in progress
            follower_task = asyncio.ensure_future(
                follower.execute(workload_texts[0])
            )
            await asyncio.sleep(0.05)
            await leader.close()  # disconnect mid-request
            leader_task.cancel()

            payload = await follower_task
            assert payload["row_count"] >= 0
            assert payload["coalesced"] is True

            # The gateway remains healthy and the map is clean.
            assert service.single_flight.snapshot().in_flight == 0
            probe = AsyncGatewayClient.in_process(gateway, "probe")
            assert "rows" in await probe.execute(workload_texts[1])

    asyncio.run(scenario())


def test_timeout_does_not_poison_single_flight(
    build_service, workload_texts, harness
):
    async def scenario():
        service = build_service()
        original = _slow_execute(service, 0.4)
        async with harness(service, request_timeout=0.1) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            with pytest.raises(GatewayRequestError) as excinfo:
                await client.execute(workload_texts[0])
            assert excinfo.value.code == "timeout"

            # The abandoned wait left the work running; once it finishes
            # the flight retires itself.
            await asyncio.sleep(0.5)
            assert service.single_flight.snapshot().in_flight == 0

            # The same query succeeds afterwards (fresh flight, no stale
            # entry swallowing it).
            service.execute = original
            payload = await client.execute(workload_texts[0])
            assert "rows" in payload
            assert service.single_flight.snapshot().in_flight == 0

    asyncio.run(scenario())


def test_per_request_timeout_option(build_service, workload_texts, harness):
    async def scenario():
        service = build_service()
        _slow_execute(service, 0.4)
        async with harness(service, request_timeout=30.0) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            with pytest.raises(GatewayRequestError) as excinfo:
                await client.execute(workload_texts[0], timeout=0.05)
            assert excinfo.value.code == "timeout"

    asyncio.run(scenario())


def test_timeout_covers_admission_wait(build_service, workload_texts, harness):
    """A queued request's budget is enforced while it waits for a slot."""

    async def scenario():
        service = build_service()
        _slow_execute(service, 0.4)
        async with harness(service, max_in_flight=1, max_waiting=8) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            running = asyncio.ensure_future(client.execute(workload_texts[0]))
            await asyncio.sleep(0.05)  # saturate the single slot
            start = time.monotonic()
            with pytest.raises(GatewayRequestError) as excinfo:
                await client.execute(workload_texts[1], timeout=0.05)
            assert excinfo.value.code == "timeout"
            assert time.monotonic() - start < 0.3, (
                "the queued request must time out on its own budget, "
                "not wait for the slot"
            )
            assert "rows" in await running  # the running request is unaffected
            snapshot = gateway.admission.snapshot()
            assert snapshot.waiting == 0 and snapshot.active == 0

    asyncio.run(scenario())


def test_cancelled_admission_wait_releases_cleanly(
    build_service, workload_texts, harness
):
    async def scenario():
        service = build_service()
        _slow_execute(service, 0.3)
        async with harness(service, max_in_flight=1, max_waiting=8) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            running = asyncio.ensure_future(client.execute(workload_texts[0]))
            await asyncio.sleep(0.05)
            queued = asyncio.ensure_future(client.execute(workload_texts[1]))
            await asyncio.sleep(0.05)
            assert gateway.admission.snapshot().waiting == 1
            queued.cancel()  # the queued client vanishes
            with pytest.raises(asyncio.CancelledError):
                await queued
            assert "rows" in await running
            snapshot = gateway.admission.snapshot()
            assert snapshot.waiting == 0
            assert snapshot.active == 0
            # The freed capacity is reusable.
            assert "rows" in await client.execute(workload_texts[2])

    asyncio.run(scenario())


def test_drain_completes_in_flight_work(build_service, workload_texts, harness):
    async def scenario():
        service = build_service()
        _slow_execute(service, 0.3)
        # Stopping inside the harness block is fine: stop() is idempotent.
        async with harness(service) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            in_flight = asyncio.ensure_future(client.execute(workload_texts[0]))
            await asyncio.sleep(0.05)
            drained = await gateway.stop(drain=True, timeout=5.0)
            assert drained is True
            payload = await in_flight
            assert "rows" in payload  # admitted work completed with a response

            with pytest.raises(GatewayRequestError) as excinfo:
                await client.execute(workload_texts[1])
            assert excinfo.value.code == "draining"

    asyncio.run(scenario())


def test_drain_flushes_tcp_responses(build_service, workload_texts, harness):
    """A TCP client's admitted request is answered before sockets close."""

    async def scenario():
        service = build_service()
        _slow_execute(service, 0.25)
        async with harness(service) as gateway:
            host, port = gateway.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                encode_frame({"id": 1, "op": "execute", "query": workload_texts[0]})
            )
            await writer.drain()
            await asyncio.sleep(0.05)
            stopper = asyncio.ensure_future(gateway.stop(drain=True, timeout=5.0))
            response = decode_frame(await reader.readline())
            assert response["ok"] is True
            assert json.dumps(response["result"]["rows"]) is not None
            assert await stopper is True
            writer.close()
            await writer.wait_closed()

    asyncio.run(scenario())
