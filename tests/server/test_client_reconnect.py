"""Client reconnect-and-retry: reads survive a gateway restart, writes don't.

``AsyncGatewayClient.connect(..., retry_reads=N)`` turns a transport
failure on an idempotent read into a bounded reconnect + re-issue — the
behaviour the query router leans on to ride out a replica restart.  The
contracts pinned here:

* an idempotent read issued across a gateway stop/start succeeds
  transparently (and the answer is correct);
* a mutation on a dead connection fails fast — it is **never** resent,
  because the gateway's at-least-once timeout semantics make blind
  write retries unsafe;
* an error *response* (the server answered) is raised immediately, not
  retried;
* with ``retry_reads=0`` the old fail-fast behaviour is unchanged.
"""

import asyncio

import pytest

from repro.server import (
    AsyncGatewayClient,
    GatewayError,
    GatewayRequestError,
    QueryGateway,
)

QUERY = '(SELECT {cargo.code} { } {cargo.quantity >= 0} { } {cargo})'


async def _restart(gateway_ref, service, port):
    """Stop the current gateway and bind a fresh one on the same port."""
    await gateway_ref[0].stop()
    gateway_ref[0] = QueryGateway(service, port=port)
    await gateway_ref[0].start()


def test_idempotent_reads_survive_gateway_restart(build_service):
    async def scenario():
        service = build_service()
        gateway_ref = [QueryGateway(service)]
        host, port = await gateway_ref[0].start()
        client = await AsyncGatewayClient.connect(
            host, port, client_id="retry", retry_reads=5
        )
        try:
            before = await client.execute(QUERY)
            await _restart(gateway_ref, service, port)
            after = await client.execute(QUERY)  # reconnects under the hood
            stats = await client.stats()  # the new connection is healthy
            return before["row_count"], after["row_count"], stats
        finally:
            await client.close()
            await gateway_ref[0].stop()

    before, after, stats = asyncio.run(scenario())
    assert after == before
    assert stats["gateway"]["requests"].get("execute") == 1


def test_mutations_never_retry_across_a_dead_connection(build_service):
    async def scenario():
        service = build_service()
        gateway_ref = [QueryGateway(service)]
        host, port = await gateway_ref[0].start()
        client = await AsyncGatewayClient.connect(
            host, port, client_id="no-write-retry", retry_reads=5
        )
        try:
            version_before = service.store.version
            await _restart(gateway_ref, service, port)
            with pytest.raises((GatewayError, ConnectionError, OSError)):
                await client.insert("cargo", {"desc": "must not apply"})
            # The write was neither applied nor silently re-issued.
            return version_before, service.store.version
        finally:
            await client.close()
            await gateway_ref[0].stop()

    version_before, version_after = asyncio.run(scenario())
    assert version_after == version_before


def test_error_responses_are_not_retried(build_service):
    async def scenario():
        service = build_service()
        gateway = QueryGateway(service)
        host, port = await gateway.start()
        client = await AsyncGatewayClient.connect(
            host, port, client_id="err", retry_reads=5
        )
        try:
            with pytest.raises(GatewayRequestError) as excinfo:
                await client.execute("(not a query")
            return excinfo.value.code, gateway.stats_payload()
        finally:
            await client.close()
            await gateway.stop()

    code, stats = asyncio.run(scenario())
    assert code == "protocol_error"
    # Exactly one attempt reached the gateway: the error response was
    # final, not treated as a retryable transport failure.
    assert stats["gateway"]["errors"].get("protocol_error") == 1


def test_retry_disabled_preserves_fail_fast(build_service):
    async def scenario():
        service = build_service()
        gateway = QueryGateway(service)
        host, port = await gateway.start()
        client = await AsyncGatewayClient.connect(host, port)  # retry_reads=0
        try:
            await gateway.stop()
            with pytest.raises((GatewayError, ConnectionError, OSError)):
                await client.execute(QUERY)
        finally:
            await client.close()

    asyncio.run(scenario())
