"""End-to-end tests of the gateway's RPCs, dedup and admission control."""

import asyncio
import json

import pytest

from repro.server import AsyncGatewayClient, GatewayRequestError

pytestmark = pytest.mark.usefixtures("small_setup")


def test_optimize_rpc_in_process(build_service, workload_texts, harness):
    async def scenario():
        service = build_service()
        async with harness(service) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            payload = await client.optimize(workload_texts[0])
            assert payload["source"] == "computed"
            assert "optimized_query" in payload
            again = await client.optimize(workload_texts[0])
            assert again["source"] == "result_cache"

    asyncio.run(scenario())


def test_execute_matches_direct_service(build_service, workload_texts, small_setup, harness):
    """Gateway responses are byte-identical to direct service execution."""

    async def scenario():
        service = build_service()
        async with harness(service) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            for text, query in zip(workload_texts[:6], small_setup.queries[:6]):
                payload = await client.execute(text, execution_mode="vectorized")
                direct = service.execute(query, execution_mode="vectorized")
                assert json.dumps(payload["rows"], sort_keys=True) == json.dumps(
                    direct.execution.rows, sort_keys=True
                )
                assert payload["metrics"] == direct.metrics.as_dict()
                assert payload["row_count"] == direct.execution.row_count

    asyncio.run(scenario())


def test_execute_batch_rpc(build_service, workload_texts, harness):
    async def scenario():
        service = build_service()
        async with harness(service) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            payload = await client.execute_batch(
                workload_texts[:4] + workload_texts[:2],
                execution_mode="vectorized",
            )
            assert payload["stats"]["total"] == 6
            assert len(payload["results"]) == 6
            # Duplicate inputs share one optimization (batch dedup) and
            # return the same rows in input order.
            assert payload["results"][0]["rows"] == payload["results"][4]["rows"]

    asyncio.run(scenario())


def test_stats_rpc_shape(build_service, workload_texts, harness):
    async def scenario():
        service = build_service()
        async with harness(service) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            await client.execute(workload_texts[0])
            stats = await client.stats()
            assert stats["protocol_version"] == 1
            service_stats = stats["service"]
            assert service_stats["store_attached"] is True
            assert service_stats["single_flight"]["leaders"] >= 1
            gateway_stats = stats["gateway"]
            assert gateway_stats["requests"] == {"execute": 1, "stats": 1}
            assert gateway_stats["admission"]["admitted"] == 1
            assert gateway_stats["admission"]["active"] == 0

    asyncio.run(scenario())


def test_rules_add_and_remove(build_service, harness):
    async def scenario():
        service = build_service()
        async with harness(service) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            before = service.repository.generation
            added = await client.add_rule(
                {
                    "name": "gateway_rule",
                    "consequent": "cargo.quantity >= 0",
                    "classes": ["cargo"],
                }
            )
            assert added["generation"] > before
            assert "gateway_rule" in [
                constraint.name for constraint in service.repository.declared()
            ]
            with pytest.raises(GatewayRequestError) as excinfo:
                await client.add_rule(
                    {"name": "gateway_rule", "consequent": "cargo.quantity >= 0"}
                )
            assert excinfo.value.code == "protocol_error"
            removed = await client.remove_rule("gateway_rule")
            assert removed["generation"] > added["generation"]
            with pytest.raises(GatewayRequestError):
                await client.remove_rule("gateway_rule")

    asyncio.run(scenario())


def test_tcp_roundtrip_and_pipelining(build_service, workload_texts, harness):
    async def scenario():
        service = build_service()
        async with harness(service) as gateway:
            host, port = gateway.address
            client = await AsyncGatewayClient.connect(host, port)
            try:
                payloads = await asyncio.gather(
                    *(client.execute(text) for text in workload_texts[:8])
                )
                assert all("rows" in payload for payload in payloads)
                stats = await client.stats()
                assert stats["gateway"]["requests"]["execute"] == 8
            finally:
                await client.close()

    asyncio.run(scenario())


def test_identical_concurrent_requests_coalesce(build_service, workload_texts, harness):
    async def scenario():
        service = build_service()
        async with harness(service) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            payloads = await asyncio.gather(
                *(client.execute(workload_texts[0]) for _ in range(12))
            )
            coalesced = sum(1 for payload in payloads if payload.get("coalesced"))
            # Everything fired in one event-loop batch, so exactly one
            # request led and the rest shared its flight.
            assert coalesced == 11
            rows = {json.dumps(payload["rows"], sort_keys=True) for payload in payloads}
            assert len(rows) == 1
            flight = service.single_flight.snapshot()
            assert flight.in_flight == 0
            assert flight.followers >= 11

    asyncio.run(scenario())


def test_distinct_options_do_not_coalesce(build_service, workload_texts, harness):
    async def scenario():
        service = build_service()
        async with harness(service) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            vectorized, rowwise = await asyncio.gather(
                client.execute(workload_texts[0], execution_mode="vectorized"),
                client.execute(workload_texts[0], execution_mode="rowwise"),
            )
            assert not vectorized.get("coalesced")
            assert not rowwise.get("coalesced")
            assert vectorized["execution_mode"] == "vectorized"
            assert rowwise["execution_mode"] == "rowwise"
            assert json.dumps(vectorized["rows"], sort_keys=True) == json.dumps(
                rowwise["rows"], sort_keys=True
            )

    asyncio.run(scenario())


def test_admission_sheds_load_when_full(build_service, workload_texts, harness):
    async def scenario():
        service = build_service()
        # One slot, no waiting room: the second concurrent distinct request
        # must be rejected with the overloaded code.
        async with harness(
            service, max_in_flight=1, max_waiting=0
        ) as gateway:
            client = AsyncGatewayClient.in_process(gateway)
            outcomes = await asyncio.gather(
                *(
                    client.execute(text)
                    for text in workload_texts[:4]
                ),
                return_exceptions=True,
            )
            rejected = [
                outcome
                for outcome in outcomes
                if isinstance(outcome, GatewayRequestError)
            ]
            succeeded = [
                outcome for outcome in outcomes if isinstance(outcome, dict)
            ]
            assert succeeded, "at least the first request must be served"
            assert rejected, "overload must shed load"
            assert all(error.code == "overloaded" for error in rejected)
            # The gateway remains healthy afterwards.
            payload = await client.execute(workload_texts[0])
            assert "rows" in payload

    asyncio.run(scenario())


def test_per_client_fairness_bound(build_service, workload_texts, harness):
    async def scenario():
        service = build_service()
        async with harness(
            service, max_in_flight=1, max_waiting=64, max_pending_per_client=2
        ) as gateway:
            greedy = AsyncGatewayClient.in_process(gateway, client_id="greedy")
            modest = AsyncGatewayClient.in_process(gateway, client_id="modest")
            outcomes = await asyncio.gather(
                *(greedy.execute(text) for text in workload_texts[:6]),
                modest.execute(workload_texts[6]),
                return_exceptions=True,
            )
            greedy_rejections = [
                outcome
                for outcome in outcomes[:6]
                if isinstance(outcome, GatewayRequestError)
            ]
            assert greedy_rejections, "the greedy client must hit its bound"
            assert all(
                error.code == "client_queue_full" for error in greedy_rejections
            )
            assert isinstance(outcomes[6], dict), "the modest client is unaffected"

    asyncio.run(scenario())


def test_stats_counters_are_consistent_under_load(
    build_service, workload_texts, harness
):
    """The stats snapshot never shows torn counters mid-traffic."""

    async def scenario():
        service = build_service()
        async with harness(service) as gateway:
            client = AsyncGatewayClient.in_process(gateway)

            async def hammer():
                for _ in range(3):
                    await asyncio.gather(
                        *(client.execute(text) for text in workload_texts[:6])
                    )

            async def observe():
                for _ in range(10):
                    stats = (await client.stats())["service"]
                    cache = stats["cache"]
                    assert cache["result_hits"] <= (
                        cache["result_hits"] + cache["result_misses"]
                    )
                    flight = stats["single_flight"]
                    assert flight["followers"] >= 0 and flight["leaders"] >= 0
                    await asyncio.sleep(0)

            await asyncio.gather(hammer(), observe())

    asyncio.run(scenario())
