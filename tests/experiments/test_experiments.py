"""Integration tests for the experiment harness (small parameters)."""

import pytest

from repro.data import DatabaseSpec
from repro.experiments import (
    PAPER_TABLE_4_1,
    run_baseline_ablation,
    run_complexity,
    run_figure_4_1,
    run_grouping_ablation,
    run_priority_ablation,
    run_table_4_1,
    run_table_4_2,
)
from repro.experiments.reporting import (
    format_histogram,
    format_table,
    percentage,
    summarize_series,
)

SMALL_SPECS = {
    "DB1": DatabaseSpec("DB1", class_cardinality=20, relationship_cardinality=30),
    "DB4": DatabaseSpec("DB4", class_cardinality=60, relationship_cardinality=120),
}


def test_table_4_1_matches_paper_shapes():
    result = run_table_4_1(seed=3)
    assert len(result.rows) == 4
    for row in result.rows:
        paper = PAPER_TABLE_4_1[row["database"]]
        assert row["object_classes"] == paper["object_classes"]
        assert row["avg_class_cardinality"] == pytest.approx(
            paper["avg_class_cardinality"]
        )
        assert row["avg_relationship_cardinality"] == pytest.approx(
            paper["avg_relationship_cardinality"]
        )
    assert "DB4" in result.as_table()


def test_figure_4_1_times_grow_with_class_count():
    result = run_figure_4_1(query_count=16, seed=5, repeats=1)
    assert result.points
    assert result.max_transformation_time() < 1.0  # well under a second
    per_class = {}
    for point in result.points:
        per_class.setdefault(point.class_count, []).append(
            point.transformation_time
        )
    means = {
        classes: sum(times) / len(times) for classes, times in per_class.items()
    }
    if len(means) >= 2:
        smallest, largest = min(means), max(means)
        assert means[largest] >= means[smallest]
    assert result.series()
    assert "classes in query" in result.as_table()


def test_table_4_2_produces_buckets_and_preserves_answers():
    result = run_table_4_2(
        specs=SMALL_SPECS, query_count=10, seed=5, check_answers=True
    )
    assert set(result.rows) == {"DB1", "DB4"}
    for row in result.rows.values():
        assert len(row.records) == 10
        assert sum(row.buckets().values()) == 10
        assert row.all_answers_agree
    assert "faster" in result.as_table()


def test_table_4_2_without_overhead_never_exceeds_original():
    result = run_table_4_2(
        specs={"DB1": SMALL_SPECS["DB1"]},
        query_count=8,
        seed=5,
        overhead_units_per_second=0.0,
        check_answers=False,
    )
    row = result.rows["DB1"]
    # Without overhead, the optimizer's decisions only rarely cost anything;
    # allow a small tolerance for cost-model misjudgements.
    assert all(record.ratio <= 1.1 for record in row.records)


def test_complexity_scales_roughly_linearly():
    result = run_complexity(constraint_counts=(8, 16, 32), repeats=1)
    assert len(result.points) == 3
    per_cell = result.time_per_cell()
    # O(m*n): time per table cell must not blow up as the table grows.
    assert max(per_cell) <= 20 * min(per_cell)
    for point in result.points:
        assert point.fired == point.constraints
    assert "m*n" in result.as_table()


def test_grouping_ablation_reports_all_policies():
    result = run_grouping_ablation(query_count=10, seed=5)
    assert set(result.measurements) == {"arbitrary", "balanced", "least_frequent"}
    for measurement in result.measurements.values():
        assert measurement.fetched >= measurement.relevant
        assert 0.0 <= measurement.precision <= 1.0
    assert "precision" in result.as_table()


def test_priority_ablation_priority_gets_more_index_introductions():
    result = run_priority_ablation(query_count=12, seed=5, budget=1)
    fifo = result.measurements["fifo"]
    priority = result.measurements["priority"]
    assert priority.index_introductions >= fifo.index_introductions
    assert "budget" in result.as_table()


def test_baseline_ablation_tentative_is_order_insensitive():
    result = run_baseline_ablation(query_count=8, seed=5, orderings=2)
    assert result.queries == 8
    assert result.tentative_profitability_checks <= result.baseline_profitability_checks
    assert "order-sensitive" in result.as_table()


def test_reporting_helpers():
    table = format_table(["a", "b"], [[1, 2.5], ["x", "y"]])
    assert "a" in table and "2.50" in table
    histogram = format_histogram({"0%": 2, "10%": 0}, total=2)
    assert "100.0%" in histogram
    assert percentage(1, 4) == 25.0
    assert percentage(1, 0) == 0.0
    stats = summarize_series([1.0, 2.0, 3.0, 4.0])
    assert stats["median"] == pytest.approx(2.5)
    assert summarize_series([]) == {"min": 0.0, "mean": 0.0, "median": 0.0, "max": 0.0}
