"""Golden-snapshot tests for the published experiment numbers.

Refactors (a new engine, a planner change, a cost-model tweak) must not
silently change the numbers the Table 4.2 and Figure 4.1 reproductions
report.  These tests run both experiments with a small deterministic
configuration (DB1, 8 queries, fixed seed, zero wall-clock overhead) and
compare against committed JSON snapshots under ``golden/``:

* ``table_4_2.json`` — per-query original/optimized measured costs and cost
  ratios.  Checked under **both** execution modes, which doubles as the
  engine-independence guarantee for the experiment pipeline end to end.
* ``figure_4_1.json`` — per-query class counts, relevant-constraint counts
  and transformations applied (the structural axes of the figure; the
  timing axis is hardware-dependent and only checked for positivity).

To regenerate after an *intentional* change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src \
        python -m pytest tests/experiments/test_golden_snapshots.py -q

and commit the diff alongside the change that justified it.
"""

import json
import os
from pathlib import Path

import pytest

from repro.data import TABLE_4_1_SPECS
from repro.engine import ExecutionMode
from repro.experiments.figure_4_1 import run_figure_4_1
from repro.experiments.table_4_2 import run_table_4_2

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_SEED = 7
GOLDEN_QUERY_COUNT = 8


def _check_or_update(name: str, snapshot):
    golden_path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
        return
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; run with "
        "REPRO_UPDATE_GOLDEN=1 to create it"
    )
    golden = json.loads(golden_path.read_text())
    assert snapshot == golden, (
        f"{name} diverged from its golden snapshot; if the change is "
        "intentional, regenerate with REPRO_UPDATE_GOLDEN=1 and commit"
    )


def _table_4_2_snapshot(execution_mode) -> dict:
    # overhead_units_per_second=0 removes the wall-clock-derived component,
    # making every reported number a deterministic function of the seed.
    result = run_table_4_2(
        specs={"DB1": TABLE_4_1_SPECS["DB1"]},
        query_count=GOLDEN_QUERY_COUNT,
        seed=GOLDEN_SEED,
        overhead_units_per_second=0.0,
        check_answers=True,
        execution_mode=execution_mode,
    )
    row = result.rows["DB1"]
    return {
        "database": "DB1",
        "records": [
            {
                "query": record.query_name,
                "original_cost": round(record.original_cost, 6),
                "optimized_cost": round(record.optimized_cost, 6),
                "ratio": round(record.ratio, 6),
                "was_transformed": record.was_transformed,
                "answers_agree": record.answers_agree,
            }
            for record in row.records
        ],
        "buckets": row.buckets(),
        "faster": row.faster,
        "slower": row.slower,
    }


@pytest.mark.parametrize(
    "execution_mode", [ExecutionMode.ROWWISE, ExecutionMode.VECTORIZED]
)
def test_table_4_2_matches_golden(execution_mode):
    snapshot = _table_4_2_snapshot(execution_mode)
    assert all(record["answers_agree"] for record in snapshot["records"])
    _check_or_update("table_4_2", snapshot)


def test_figure_4_1_matches_golden():
    result = run_figure_4_1(
        spec=TABLE_4_1_SPECS["DB1"],
        query_count=GOLDEN_QUERY_COUNT,
        seed=GOLDEN_SEED,
        repeats=1,
    )
    assert all(point.transformation_time >= 0.0 for point in result.points)
    snapshot = {
        "points": [
            {
                "query": point.query_name,
                "class_count": point.class_count,
                "relevant_constraints": point.relevant_constraints,
                "transformations_applied": point.transformations_applied,
            }
            for point in result.points
        ]
    }
    _check_or_update("figure_4_1", snapshot)
