"""Unit tests for the synthetic database generator."""

import pytest

from repro.constraints import validate_database
from repro.data import (
    TABLE_4_1_SPECS,
    DatabaseGenerator,
    DatabaseSpec,
    build_evaluation_constraints,
)


@pytest.fixture(scope="module")
def generated_db1():
    return DatabaseGenerator(seed=3).generate(TABLE_4_1_SPECS["DB1"])


def test_table_4_1_specs_match_paper():
    assert TABLE_4_1_SPECS["DB1"].class_cardinality == 52
    assert TABLE_4_1_SPECS["DB2"].class_cardinality == 104
    assert TABLE_4_1_SPECS["DB3"].relationship_cardinality == 308
    assert TABLE_4_1_SPECS["DB4"].relationship_cardinality == 616


def test_spec_validation():
    with pytest.raises(ValueError):
        DatabaseSpec("bad", class_cardinality=0, relationship_cardinality=1)
    with pytest.raises(ValueError):
        DatabaseSpec("bad", class_cardinality=1, relationship_cardinality=-1)


def test_generated_shape_matches_spec(generated_db1):
    summary = generated_db1.summary()
    assert summary["object_classes"] == 5
    assert summary["avg_class_cardinality"] == pytest.approx(52)
    assert summary["relationships"] == 6
    assert summary["avg_relationship_cardinality"] == pytest.approx(77)


def test_generated_data_respects_constraints(generated_db1):
    report = validate_database(
        generated_db1.schema,
        generated_db1.store,
        build_evaluation_constraints(),
    )
    assert report.is_valid, report.summary()


def test_total_participation_in_relationships(generated_db1):
    """Every instance takes part in every relationship it can (class elimination safety)."""
    schema = generated_db1.schema
    store = generated_db1.store
    for relationship in schema.relationships():
        for class_name in (relationship.source, relationship.target):
            attribute = relationship.attribute_for(class_name)
            for instance in store.instances(class_name):
                assert instance.pointer_oids(attribute), (
                    f"{class_name}#{instance.oid} has no {relationship.name} link"
                )


def test_value_catalog_contains_real_values(generated_db1):
    catalog = generated_db1.value_catalog
    assert "cargo.desc" in catalog and "vehicle.class" in catalog
    descs = {
        instance.values["desc"]
        for instance in generated_db1.store.instances("cargo")
    }
    assert set(catalog["cargo.desc"]) <= descs


def test_generation_is_deterministic():
    first = DatabaseGenerator(seed=5).generate(TABLE_4_1_SPECS["DB1"])
    second = DatabaseGenerator(seed=5).generate(TABLE_4_1_SPECS["DB1"])
    assert first.store.counts() == second.store.counts()
    first_values = [i.values for i in first.store.instances("cargo")]
    second_values = [i.values for i in second.store.instances("cargo")]
    assert first_values == second_values


def test_different_seeds_differ():
    first = DatabaseGenerator(seed=1).generate(TABLE_4_1_SPECS["DB1"])
    second = DatabaseGenerator(seed=2).generate(TABLE_4_1_SPECS["DB1"])
    first_values = [i.values for i in first.store.instances("cargo")]
    second_values = [i.values for i in second.store.instances("cargo")]
    assert first_values != second_values


def test_indexes_are_consistent_after_enforcement(generated_db1):
    """Repairs rebuild the indexes, so index lookups agree with scans."""
    from repro.constraints import Predicate

    store = generated_db1.store
    predicate = Predicate.equals("cargo.desc", "frozen food")
    indexed = set(store.indexes.lookup(predicate) or [])
    scanned = {
        instance.oid
        for instance in store.instances("cargo")
        if instance.values.get("desc") == "frozen food"
    }
    assert indexed == scanned


def test_generate_all_produces_every_spec():
    generator = DatabaseGenerator(seed=3)
    small_specs = {
        "tiny": DatabaseSpec("tiny", class_cardinality=8, relationship_cardinality=10),
        "small": DatabaseSpec("small", class_cardinality=12, relationship_cardinality=16),
    }
    databases = generator.generate_all(small_specs)
    assert set(databases) == {"tiny", "small"}
    assert databases["tiny"].store.count("cargo") == 8
