"""Unit tests for workload / evaluation setup construction."""

from repro.constraints import GroupingPolicy, Predicate
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup, build_workload
from repro.data.workload import constraint_selection_pool
from repro.data import build_evaluation_constraints, build_evaluation_schema
from repro.query import GeneratorConfig


def test_constraint_selection_pool_groups_by_class():
    pool = constraint_selection_pool(build_evaluation_constraints())
    assert "vehicle" in pool and "cargo" in pool
    assert Predicate.equals("vehicle.desc", "refrigerated truck") in pool["vehicle"]
    assert all(p.is_selection for predicates in pool.values() for p in predicates)


def test_build_workload_respects_count_and_constraints(small_setup):
    schema = build_evaluation_schema()
    queries = build_workload(
        schema,
        small_setup.database.value_catalog,
        count=10,
        seed=3,
        constraints=build_evaluation_constraints(),
        config=GeneratorConfig(preferred_bias=1.0, selection_probability=1.0),
    )
    assert len(queries) == 10
    for query in queries:
        query.validate(schema)


def test_evaluation_setup_wiring(small_setup):
    assert small_setup.store is small_setup.database.store
    assert len(small_setup.queries) == 12
    assert len(small_setup.constraints) == 15
    assert small_setup.statistics.cardinality("cargo") == 52
    assert small_setup.repository.stats().declared == 15
    # The repository's access statistics were warmed with the workload.
    assert small_setup.repository.statistics.queries_seen >= len(small_setup.queries)


def test_setup_with_alternative_policy_and_constraints():
    constraints = build_evaluation_constraints()[:5]
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"],
        query_count=5,
        seed=2,
        grouping_policy=GroupingPolicy.BALANCED,
        constraints=constraints,
    )
    assert setup.repository.policy is GroupingPolicy.BALANCED
    assert len(setup.constraints) == 5
    assert len(setup.queries) == 5
