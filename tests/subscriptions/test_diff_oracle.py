"""Seeded diff-stream equivalence oracle for live subscriptions.

This harness drives seeded random schedules of ``{insert, update,
delete, batch, unsubscribe}`` through a persistent
:class:`~repro.service.OptimizationService` with 4-6 live subscriptions
registered up front, pumps the
:class:`~repro.subscriptions.SubscriptionRegistry` after each step,
folds the emitted ``diff``/``resync`` frames client-side with
:func:`~repro.subscriptions.apply_changes`, and asserts the
subscription contract at every single step:

* **byte-exact server tracking, always** — the folded rows equal the
  standing view's retained rows on the serialized byte form (no key
  sorting: row order *and* attribute order are part of the stream);
* **logical equivalence with fresh execution, always** — the folded
  rows equal ``service.execute(query)`` run fresh, as a multiset of
  rows (a delta proven irrelevant is skipped without re-executing, so
  the view legitimately keeps its last plan's row/attribute ordering
  while a fresh execution may re-plan under the drifted statistics);
* **byte-exact fresh execution on every frame step** — whenever a
  ``diff`` or ``resync`` frame arrived, the view just re-executed, so
  the folded rows must equal the fresh execution byte for byte;
* frame versions are monotone per subscription.

A fraction of schedules enable dynamic rules, so mutation-driven rule
churn exercises the re-optimize + ``resync`` path alongside the
incremental diff path.

Determinism and reproduction follow the mutation oracle:

* the base seed comes from ``REPRO_ORACLE_SEED`` (defaults pinned);
* ``REPRO_ORACLE_SCHEDULES`` overrides the per-engine schedule count
  (defaults: 80 row-wise, 80 vectorized, 48 parallel — 208 total);
* on failure the mutation schedule is **shrunk** greedily to a minimal
  failing op list and printed together with the seed.

Ops are abstract (targets picked by index into the live OID set at
apply time), so any subsequence of a schedule is itself a valid
schedule — the property that makes shrinking sound.
"""

import json
import os
import random

import pytest

from repro.constraints import ConstraintRepository
from repro.data import build_evaluation_constraints
from repro.engine import ObjectStore
from repro.query import parse_query
from repro.service import OptimizationService

SEED = int(os.environ.get("REPRO_ORACLE_SEED", "19910408"))

#: Schedules per engine; REPRO_ORACLE_SCHEDULES overrides the base.
SCHEDULES = {
    "rowwise": int(os.environ.get("REPRO_ORACLE_SCHEDULES", "80")),
    "vectorized": int(os.environ.get("REPRO_ORACLE_SCHEDULES", "80")),
    "parallel": int(os.environ.get("REPRO_ORACLE_SCHEDULES", "48")),
}

QUERY_TEXTS = [
    '(SELECT {cargo.code, cargo.quantity} { } {cargo.quantity >= 30} { } {cargo})',
    '(SELECT {cargo.code} { } {cargo.desc = "frozen food"} { } {cargo})',
    '(SELECT {vehicle.vehicle_no} { } {vehicle.class >= 2} { } {vehicle})',
    '(SELECT {cargo.code, vehicle.desc} { } '
    '{vehicle.desc = "refrigerated truck"} {collects} {cargo, vehicle})',
    '(SELECT {supplier.name, cargo.code} { } {cargo.quantity >= 10} '
    '{supplies} {supplier, cargo})',
    '(SELECT {supplier.name, cargo.code, vehicle.vehicle_no} { } '
    '{supplier.rating >= 2} {supplies, collects} {supplier, cargo, vehicle})',
]

DESCS = ["frozen food", "textiles", "machinery"]
VEHICLE_DESCS = ["refrigerated truck", "van", "tanker"]


def _dump(rows):
    """Byte form of a row list — no key sorting, attribute order counts."""
    return json.dumps(rows, separators=(",", ":"), default=repr)


def _canon(rows):
    """Order-insensitive form: the multiset of canonicalized rows."""
    return sorted(
        json.dumps(row, separators=(",", ":"), sort_keys=True, default=repr)
        for row in rows
    )


def _base_rows(rng):
    """The deterministic seed data of one schedule (inserted pre-subscribe)."""
    rows = []
    supplier_count = rng.randint(2, 4)
    vehicle_count = rng.randint(2, 5)
    cargo_count = rng.randint(6, 14)
    for i in range(supplier_count):
        rows.append(
            ("supplier", {"name": f"S{i}", "region": "west", "rating": 1 + i % 4})
        )
    for i in range(vehicle_count):
        rows.append(
            (
                "vehicle",
                {
                    "vehicle_no": f"V{i}",
                    "desc": VEHICLE_DESCS[i % len(VEHICLE_DESCS)],
                    "class": 1 + i % 4,
                    "capacity": 1000 * (1 + i % 3),
                },
            )
        )
    for i in range(cargo_count):
        values = {
            "code": f"C{i}",
            "desc": DESCS[i % len(DESCS)],
            "quantity": rng.randint(5, 90),
            "category": "general",
        }
        if supplier_count:
            values["supplies"] = 1 + i % supplier_count
        if vehicle_count:
            values["collects"] = 1 + i % vehicle_count
        rows.append(("cargo", values))
    return rows


def _write_op(rng):
    kind = rng.choices(["insert", "update", "delete", "tweak"], weights=[30, 30, 15, 10])[0]
    if kind == "insert":
        return (
            "insert",
            "cargo",
            {
                "code": f"N{rng.randint(0, 999)}",
                "desc": rng.choice(DESCS),
                "quantity": rng.randint(5, 120),
                "category": "general",
            },
        )
    if kind == "update":
        return ("update", "cargo", rng.randrange(64), {"quantity": rng.randint(5, 120)})
    if kind == "delete":
        return ("delete", "cargo", rng.randrange(64))
    # "tweak": a write on a non-cargo class, so multi-class views see
    # deltas on their other scan classes too.
    if rng.random() < 0.5:
        return ("update", "supplier", rng.randrange(64), {"rating": rng.randint(1, 4)})
    return ("update", "vehicle", rng.randrange(64), {"class": rng.randint(1, 4)})


def _build_schedule(rng, subscription_count):
    """Abstract post-subscribe ops; valid in full or any subsequence.

    Each top-level op triggers exactly one pump + fold + compare, so a
    ``batch`` op (2-4 writes, one pump) exercises multi-record journal
    batches and the candidate-set bookkeeping across them.
    """
    ops = []
    for _ in range(rng.randint(6, 12)):
        kind = rng.choices(["write", "batch", "unsubscribe"], weights=[70, 22, 8])[0]
        if kind == "write":
            ops.append(("write", _write_op(rng)))
        elif kind == "batch":
            ops.append(("batch", [_write_op(rng) for _ in range(rng.randint(2, 4))]))
        else:
            ops.append(("unsubscribe", rng.randrange(subscription_count)))
    # End on a write so the tail of the stream is always observed.
    ops.append(("write", _write_op(rng)))
    return ops


class _Mismatch(AssertionError):
    """A folded diff stream diverged from fresh execution."""


_REPOSITORY_CACHE = {}


def _repository(schema):
    """One precompiled static repository shared per schema (read-only)."""
    key = id(schema)
    repository = _REPOSITORY_CACHE.get(key)
    if repository is None:
        repository = ConstraintRepository(schema)
        repository.add_all(build_evaluation_constraints())
        repository.precompile()
        _REPOSITORY_CACHE[key] = repository
    return repository


class _Consumer:
    """Client-side fold state of one subscription's push stream."""

    def __init__(self, query, options, snapshot):
        self.query = query
        self.options = options
        self.rows = [dict(row) for row in snapshot["rows"]]
        self.version = snapshot["version"]
        self.subscription = snapshot["subscription"]
        self.frames = 0

    def fold(self, frame):
        from repro.subscriptions import apply_changes

        self.frames += 1
        if frame["push"] == "diff":
            if frame["version"] <= self.version:
                raise _Mismatch(
                    f"{self.subscription}: diff frame version {frame['version']} "
                    f"not past folded version {self.version}"
                )
            self.rows = apply_changes(self.rows, frame["changes"])
        elif frame["push"] == "resync":
            if frame["version"] < self.version:
                raise _Mismatch(
                    f"{self.subscription}: resync frame went backwards "
                    f"({frame['version']} < {self.version})"
                )
            self.rows = [dict(row) for row in frame["rows"]]
        else:  # pragma: no cover - the registry only builds these two
            raise _Mismatch(f"unknown push kind {frame['push']!r}")
        self.version = frame["version"]


def _run_schedule(schema, queries, engine, rng_seed, ops):
    """Apply ``ops``; raise :class:`_Mismatch` on the first divergence."""
    rng = random.Random(rng_seed)
    shard_count = rng.choice([1, 2, 3]) if engine != "rowwise" else rng.choice([1, 3])
    dynamic = rng.random() < 0.3
    store = ObjectStore(schema, shard_count=shard_count)
    if dynamic:
        # Dynamic rules mutate the repository (replace_derived), so these
        # schedules get a private one — the shared cache stays read-only.
        repository = ConstraintRepository(schema)
        repository.add_all(build_evaluation_constraints())
        repository.precompile()
    else:
        repository = _repository(schema)
    service = OptimizationService(
        schema,
        repository=repository,
        store=store,
        execution_mode=engine,
        engine_workers=2,
        engine_min_partition_rows=1 if engine == "parallel" else None,
    )
    try:
        for class_name, values in _base_rows(rng):
            service.mutate("insert", class_name, values=values)
        if dynamic:
            # Mutation-driven rule churn → the resync path gets exercised.
            service.enable_dynamic_rules(class_names=["cargo"])
        registry = service.subscription_registry()
        frames = []
        consumers = []
        chosen = rng.sample(range(len(QUERY_TEXTS)), rng.randint(4, 6))
        for query_index in chosen:
            query = queries[query_index]
            options = {"optimize": rng.random() >= 0.2}
            snapshot = registry.subscribe(
                query, options=dict(options), emit=frames.append
            )
            consumers.append(_Consumer(query, options, snapshot))

        def apply_write(op):
            if op[0] == "insert":
                service.mutate("insert", op[1], values=op[2])
                return
            live = [instance.oid for instance in store.instances(op[1])]
            if not live:
                return  # nothing to target; degrades to a no-op
            oid = live[op[2] % len(live)]
            if op[0] == "update":
                service.mutate("update", op[1], oid=oid, values=op[3])
            else:
                service.mutate("delete", op[1], oid=oid)

        live = {consumer.subscription: consumer for consumer in consumers}

        def check(step):
            # Route this pump's frames to their consumers, in emit order.
            framed = set()
            while frames:
                frame = frames.pop(0)
                consumer = live.get(frame["subscription"])
                if consumer is not None:
                    consumer.fold(frame)
                    framed.add(frame["subscription"])
            for sid, consumer in live.items():
                view = registry._views.get(sid)
                if view is not None and _dump(consumer.rows) != _dump(view.rows):
                    raise _Mismatch(
                        f"step {step}: {sid} ({consumer.query.name}) folded "
                        f"rows drifted from the standing view's rows after "
                        f"{consumer.frames} frames"
                    )
                fresh = service.execute(
                    consumer.query, optimize=consumer.options["optimize"]
                ).execution.rows
                if _canon(consumer.rows) != _canon(fresh):
                    raise _Mismatch(
                        f"step {step}: {sid} ({consumer.query.name}) folded "
                        f"rows diverged from fresh execution: "
                        f"{len(consumer.rows)} folded vs {len(fresh)} fresh "
                        f"after {consumer.frames} frames"
                    )
                if sid in framed and _dump(consumer.rows) != _dump(fresh):
                    raise _Mismatch(
                        f"step {step}: {sid} ({consumer.query.name}) frame "
                        f"step not byte-identical to fresh execution "
                        f"({consumer.frames} frames folded)"
                    )

        for step, op in enumerate(ops):
            if op[0] == "write":
                apply_write(op[1])
            elif op[0] == "batch":
                for write in op[1]:
                    apply_write(write)
            else:  # unsubscribe
                target = consumers[op[1] % len(consumers)]
                if target.subscription in live:
                    registry.unsubscribe(target.subscription)
                    del live[target.subscription]
            registry.pump()
            check(step)
    finally:
        service.close()


def _shrink(schema, queries, engine, rng_seed, ops):
    """Greedily drop ops while the schedule still fails (minimal repro)."""

    def fails(candidate):
        try:
            _run_schedule(schema, queries, engine, rng_seed, candidate)
        except _Mismatch:
            return True
        return False

    current = list(ops)
    changed = True
    while changed:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1 :]
            if candidate and fails(candidate):
                current = candidate
                changed = True
                break
    return current


#: Stable per-engine seed offsets (tuple hashes are not stable across
#: interpreter runs, so the seed is derived arithmetically).
_ENGINE_OFFSET = {"rowwise": 0, "vectorized": 1, "parallel": 2}


def _seed_for(engine, index):
    return SEED + 7919 * index + 104729 * _ENGINE_OFFSET[engine]


@pytest.mark.parametrize("engine", ["rowwise", "vectorized", "parallel"])
def test_diff_streams_fold_to_fresh_execution(evaluation_schema, engine):
    schema = evaluation_schema
    queries = [
        parse_query(text, name=f"sub-oracle-{index}")
        for index, text in enumerate(QUERY_TEXTS)
    ]
    for query in queries:
        query.validate(schema)
    failures = []
    for index in range(SCHEDULES[engine]):
        seed = _seed_for(engine, index)
        rng = random.Random(seed)
        # 6 is only the upper bound for unsubscribe indexes; the runner
        # mods them by the actual consumer count.
        schedule = _build_schedule(rng, subscription_count=6)
        try:
            _run_schedule(schema, queries, engine, seed, schedule)
        except _Mismatch as exc:
            minimal = _shrink(schema, queries, engine, seed, schedule)
            failures.append(
                f"schedule #{index} (REPRO_ORACLE_SEED={SEED}, engine={engine}): "
                f"{exc}\n  minimal repro ({len(minimal)} ops): {minimal}"
            )
            break  # one shrunk repro is worth more than a failure flood
    assert not failures, "\n".join(failures)
