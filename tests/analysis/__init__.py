"""Test package (unique module paths fix pytest collection of duplicate basenames)."""
