"""The live tree must stay clean modulo the committed baseline.

This is the in-suite mirror of CI's ``static-analysis`` job: it runs
every pass over ``src/repro`` with the repo's docs and baseline, so a
contract regression fails the unit suite even before the dedicated job
runs — and a fixed finding whose baseline entry was forgotten fails too
(stale entries must be pruned, not accumulated).
"""

from pathlib import Path

from repro.analysis import AnalysisContext, Baseline, all_passes, run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]


def live_report():
    context = AnalysisContext(
        REPO_ROOT / "src" / "repro", docs_root=REPO_ROOT / "docs"
    )
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    return run_analysis(context, all_passes(), baseline)


def test_live_tree_is_clean_modulo_baseline():
    report = live_report()
    assert report.new == [], "unbaselined findings:\n" + "\n".join(
        f"  {f.location()}: [{f.rule}/{f.check}] {f.symbol}: {f.message}"
        for f in report.new
    )


def test_baseline_has_no_stale_entries():
    report = live_report()
    assert report.stale_entries == [], (
        "baseline entries that no longer match any finding: "
        + ", ".join(e.symbol for e in report.stale_entries)
    )


def test_every_baselined_finding_is_justified():
    report = live_report()
    for _, entry in report.baselined:
        assert len(entry.justification.split()) >= 5, entry
