"""Framework mechanics: findings, baseline, import graph, reporters."""

import json
import textwrap

import pytest

from repro.analysis import (
    AnalysisContext,
    AnalysisError,
    Baseline,
    Finding,
    all_passes,
    render_json,
    render_text,
    run_analysis,
)


def make_finding(**overrides):
    base = dict(
        rule="determinism",
        check="set-iteration",
        file="engine/x.py",
        line=12,
        symbol="f:names",
        message="iteration order leaks",
    )
    base.update(overrides)
    return Finding(**base)


class TestFinding:
    def test_fingerprint_ignores_line(self):
        assert (
            make_finding(line=12).fingerprint == make_finding(line=99).fingerprint
        )

    def test_location(self):
        assert make_finding().location() == "engine/x.py:12"
        assert make_finding(line=0).location() == "engine/x.py"


class TestBaseline:
    def entry(self, **overrides):
        base = dict(
            rule="determinism",
            check="set-iteration",
            file="engine/x.py",
            symbol="f:names",
            justification="commutative reduction",
        )
        base.update(overrides)
        return base

    def write(self, tmp_path, entries):
        path = tmp_path / "analysis-baseline.json"
        path.write_text(json.dumps({"version": 1, "findings": entries}))
        return path

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.entries == []

    def test_split_matches_and_reports_stale(self, tmp_path):
        baseline = Baseline.load(
            self.write(
                tmp_path,
                [self.entry(), self.entry(symbol="gone", check="wall-clock")],
            )
        )
        new, matched, stale = baseline.split(
            [make_finding(), make_finding(symbol="other")]
        )
        assert [f.symbol for f in new] == ["other"]
        assert [f.symbol for f, _ in matched] == ["f:names"]
        assert [e.symbol for e in stale] == ["gone"]

    def test_justification_is_mandatory(self, tmp_path):
        with pytest.raises(AnalysisError, match="justification"):
            Baseline.load(self.write(tmp_path, [self.entry(justification=" ")]))

    def test_duplicate_entries_rejected(self, tmp_path):
        with pytest.raises(AnalysisError, match="duplicate"):
            Baseline.load(self.write(tmp_path, [self.entry(), self.entry()]))

    def test_version_enforced(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(AnalysisError, match="version"):
            Baseline.load(path)


class TestImportGraph:
    def test_relative_and_absolute_imports_resolve(self, build_tree):
        context = build_tree(
            {
                "caching.py": "X = 1\n",
                "engine/plan.py": "Y = 2\n",
                "engine/executor.py": textwrap.dedent(
                    """
                    from ..caching import X
                    from .plan import Y
                    """
                ),
                "service/service.py": "from repro.engine import executor\n",
            }
        )
        graph = context.import_graph
        assert graph["engine/executor.py"] == {"caching.py", "engine/plan.py"}
        assert graph["service/service.py"] == {"engine/executor.py"}
        assert context.importers_of("engine/plan.py") == ["engine/executor.py"]


class TestReporting:
    def fixture_report(self, build_tree):
        context = build_tree(
            {
                "constraints/rules.py": textwrap.dedent(
                    """
                    def leak(names):
                        chosen = set(names)
                        return [name for name in chosen]
                    """
                )
            }
        )
        return run_analysis(context, all_passes())

    def test_text_and_json_agree(self, build_tree):
        report = self.fixture_report(build_tree)
        assert not report.ok
        text = render_text(report)
        assert "determinism/set-iteration" in text
        assert "analysis FAILED: 1 new" in text
        payload = json.loads(render_json(report))
        assert payload["ok"] is False
        assert payload["counts"]["new"] == 1
        assert payload["new"][0]["rule"] == "determinism"

    def test_baseline_split_in_report(self, build_tree, tmp_path):
        context = build_tree(
            {
                "constraints/rules.py": textwrap.dedent(
                    """
                    def leak(names):
                        chosen = set(names)
                        return [name for name in chosen]
                    """
                )
            }
        )
        findings = run_analysis(context, all_passes()).findings
        entry = {
            "rule": findings[0].rule,
            "check": findings[0].check,
            "file": findings[0].file,
            "symbol": findings[0].symbol,
            "justification": "kept for the test",
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "findings": [entry]}))
        report = run_analysis(context, all_passes(), Baseline.load(path))
        assert report.ok
        assert len(report.baselined) == 1
        assert "baselined (1)" in render_text(report)

    def test_parse_error_is_analysis_error(self, tmp_path):
        package = tmp_path / "repro"
        package.mkdir()
        (package / "broken.py").write_text("def oops(:\n")
        with pytest.raises(AnalysisError, match="broken.py"):
            AnalysisContext(package)
