"""metrics-parity-surface: identical written-field sets across engines."""

import textwrap

from .conftest import checks_of, rules_of

VIOLATING = {
    "engine/executor.py": textwrap.dedent(
        """
        class ExecutionMetrics:
            rows_output: int = 0
            index_lookups: int = 0
            dead_counter: int = 0


        class QueryExecutor:
            def run(self, metrics):
                metrics.index_lookups += 1
                metrics.rows_output = 1
        """
    ),
    "engine/vectorized.py": textwrap.dedent(
        """
        class VectorizedExecutor:
            def run(self, ctx):
                ctx.metrics.rows_output = 2
        """
    ),
}

CLEAN = {
    "engine/executor.py": textwrap.dedent(
        """
        class ExecutionMetrics:
            rows_output: int = 0
            index_lookups: int = 0


        class QueryExecutor:
            def run(self, metrics):
                metrics.index_lookups += 1
                metrics.rows_output = 1
        """
    ),
    "engine/vectorized.py": textwrap.dedent(
        """
        class VectorizedExecutor:
            def run(self, ctx):
                ctx.metrics.index_lookups += 2
                ctx.metrics.rows_output = 2
        """
    ),
    "engine/parallel.py": textwrap.dedent(
        """
        class ParallelExecutor:
            def merge(self, outcome):
                metrics = outcome.metrics
                metrics.index_lookups += outcome.metrics.index_lookups
                metrics.rows_output = 3
        """
    ),
}


def test_violating_fixture_trips_only_metrics_parity(build_tree, run_all_passes):
    findings = run_all_passes(build_tree(VIOLATING))
    assert rules_of(findings) == {"metrics-parity-surface"}
    assert checks_of(findings) == {
        ("metrics-parity-surface", "executor-field"),
        ("metrics-parity-surface", "field-unwritten"),
    }
    by_check = {}
    for finding in findings:
        by_check.setdefault(finding.check, set()).add(
            (finding.file, finding.symbol)
        )
    assert by_check["executor-field"] == {
        ("engine/vectorized.py", "index_lookups")
    }
    assert by_check["field-unwritten"] == {
        ("engine/executor.py", "ExecutionMetrics.dead_counter")
    }


def test_clean_fixture_passes(build_tree, run_all_passes):
    assert run_all_passes(build_tree(CLEAN)) == []
