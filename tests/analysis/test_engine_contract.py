"""engine-contract: node declarations and the executor exhaustiveness matrix."""

import textwrap

from .conftest import checks_of, rules_of

VIOLATING = {
    "engine/plan.py": textwrap.dedent(
        '''
        class PlanNode:
            """Base node."""

            def required_columns(self):
                return ()

            def partition_safe(self):
                return False


        class GoodNode(PlanNode):
            def required_columns(self):
                return ("cargo.desc",)

            def partition_safe(self):
                return True


        class BadNode(PlanNode):
            """Declares columns but inherits partition_safe silently."""

            def required_columns(self):
                return ()
        '''
    ),
    "engine/executor.py": textwrap.dedent(
        """
        from .plan import GoodNode


        class QueryExecutor:
            def run(self, node):
                if isinstance(node, GoodNode):
                    return []
                raise TypeError(node)
        """
    ),
}

CLEAN = {
    "engine/plan.py": textwrap.dedent(
        """
        class PlanNode:
            def required_columns(self):
                return ()

            def partition_safe(self):
                return False


        class GoodNode(PlanNode):
            def required_columns(self):
                return ("cargo.desc",)

            def partition_safe(self):
                return True


        class OtherNode(PlanNode):
            def required_columns(self):
                return ()

            def partition_safe(self):
                return False
        """
    ),
    "engine/executor.py": textwrap.dedent(
        """
        from .plan import GoodNode, OtherNode


        class QueryExecutor:
            def run(self, node):
                if isinstance(node, (GoodNode, OtherNode)):
                    return []
                raise TypeError(node)
        """
    ),
    # The parallel engine has no isinstance dispatch of its own; it must
    # be credited through delegation to the executor it instantiates.
    "engine/vectorized.py": textwrap.dedent(
        """
        from .plan import GoodNode, OtherNode


        class VectorizedExecutor:
            def run(self, node):
                if isinstance(node, GoodNode):
                    return []
                if isinstance(node, OtherNode):
                    return []
                raise TypeError(node)
        """
    ),
    "engine/parallel.py": textwrap.dedent(
        """
        from .vectorized import VectorizedExecutor


        class ParallelExecutor:
            def __init__(self):
                self._local = VectorizedExecutor()

            def run(self, node):
                return self._local.run(node)
        """
    ),
}


def test_violating_fixture_trips_only_engine_contract(build_tree, run_all_passes):
    findings = run_all_passes(build_tree(VIOLATING))
    assert rules_of(findings) == {"engine-contract"}
    assert checks_of(findings) == {
        ("engine-contract", "node-declaration"),
        ("engine-contract", "executor-coverage"),
    }
    symbols = {f.symbol for f in findings}
    assert "BadNode.partition_safe" in symbols
    assert "BadNode" in symbols  # executor.py does not dispatch on it


def test_clean_fixture_passes_with_delegation(build_tree, run_all_passes):
    assert run_all_passes(build_tree(CLEAN)) == []


def test_missing_declaration_names_each_method(build_tree, run_all_passes):
    files = dict(VIOLATING)
    files["engine/plan.py"] = files["engine/plan.py"].replace(
        "    def required_columns(self):\n"
        "        return ()\n",
        "    pass\n",
        1,
    )
    # Now even PlanNode's base methods are gone from BadNode's view; the
    # pass still only reasons about own-body declarations.
    findings = run_all_passes(build_tree(files))
    assert rules_of(findings) == {"engine-contract"}
