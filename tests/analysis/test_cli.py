"""The analysis CLI driver and the repro-level lint subcommand."""

import json
import textwrap

from repro.analysis.cli import main as analysis_main
from repro.cli import main as repro_main

VIOLATING = textwrap.dedent(
    """
    def leak(names):
        chosen = set(names)
        return [name for name in chosen]
    """
)


def materialize(tmp_path, source=VIOLATING):
    package = tmp_path / "repro"
    (package / "constraints").mkdir(parents=True)
    (package / "constraints" / "rules.py").write_text(source)
    return package


def test_violations_exit_1_and_print_findings(tmp_path, capsys):
    package = materialize(tmp_path)
    assert analysis_main(["--package-root", str(package)]) == 1
    out = capsys.readouterr().out
    assert "determinism/set-iteration" in out
    assert "analysis FAILED" in out


def test_clean_tree_exits_0(tmp_path, capsys):
    package = materialize(tmp_path, "VALUE = 1\n")
    assert analysis_main(["--package-root", str(package)]) == 0
    assert "analysis clean" in capsys.readouterr().out


def test_json_output_and_artifact(tmp_path, capsys):
    package = materialize(tmp_path)
    artifact = tmp_path / "report.json"
    code = analysis_main(
        [
            "--package-root",
            str(package),
            "--format",
            "json",
            "--output",
            str(artifact),
        ]
    )
    assert code == 1
    stdout_payload = json.loads(capsys.readouterr().out)
    artifact_payload = json.loads(artifact.read_text())
    assert stdout_payload == artifact_payload
    assert artifact_payload["counts"]["new"] == 1


def test_baseline_silences_and_gates_on_stale(tmp_path, capsys):
    package = materialize(tmp_path)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "version": 1,
                "findings": [
                    {
                        "rule": "determinism",
                        "check": "set-iteration",
                        "file": "constraints/rules.py",
                        "symbol": "leak:chosen",
                        "justification": "kept for the test",
                    }
                ],
            }
        )
    )
    code = analysis_main(
        ["--package-root", str(package), "--baseline", str(baseline)]
    )
    assert code == 0
    assert "baselined (1)" in capsys.readouterr().out


def test_rule_filter_and_unknown_rule(tmp_path, capsys):
    package = materialize(tmp_path)
    assert (
        analysis_main(
            ["--package-root", str(package), "--rule", "protocol-drift"]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        analysis_main(["--package-root", str(package), "--rule", "nope"]) == 2
    )
    assert "unknown rule" in capsys.readouterr().err


def test_list_rules(capsys):
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "engine-contract",
        "lock-discipline",
        "determinism",
        "protocol-drift",
        "metrics-parity-surface",
    ):
        assert rule in out


def test_broken_baseline_exits_2(tmp_path, capsys):
    package = materialize(tmp_path, "VALUE = 1\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{not json")
    code = analysis_main(
        ["--package-root", str(package), "--baseline", str(baseline)]
    )
    assert code == 2
    assert "analysis error" in capsys.readouterr().err


def test_repro_lint_subcommand_delegates(tmp_path, capsys):
    package = materialize(tmp_path)
    assert repro_main(["lint", "--package-root", str(package)]) == 1
    assert "determinism/set-iteration" in capsys.readouterr().out
