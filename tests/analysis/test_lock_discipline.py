"""lock-discipline: write coverage, escalation, docstring contract, fork."""

import textwrap

from .conftest import checks_of, rules_of

VIOLATING_SERVICE = {
    "service/service.py": textwrap.dedent(
        '''
        class Service:
            def unlocked_write(self):
                self.store.insert("cargo", {})

            def escalating_read(self, query):
                with self._store_lock.read():
                    with self._store_lock.write():
                        return self.run(query)

            def refresh(self):
                """Re-derive the rules (write lock held)."""
                self.repository.replace_derived([], [])

            def forgetful_caller(self):
                self.refresh()
        '''
    ),
}

VIOLATING_FORK = {
    "engine/parallel.py": textwrap.dedent(
        """
        import threading
        from concurrent.futures import ProcessPoolExecutor

        _journal_lock = threading.Lock()


        def _init_worker(state):
            with _journal_lock:
                return state


        def _run_chunk(tasks):
            _journal_lock.acquire()
            try:
                return tasks
            finally:
                _journal_lock.release()


        class ParallelExecutor:
            def pool(self):
                pool = ProcessPoolExecutor(initializer=_init_worker)
                pool.submit(_run_chunk, [])
                return pool
        """
    ),
}

CLEAN = {
    "service/service.py": textwrap.dedent(
        '''
        class Service:
            def mutate(self, specs):
                with self._store_lock.write():
                    for spec in specs:
                        self.store.insert("cargo", spec)
                    self.refresh()

            def execute(self, query):
                with self._store_lock.read():
                    return self.run(query)

            def refresh(self):
                """Re-derive the rules (write lock held)."""
                self.repository.replace_derived([], [])
        '''
    ),
    "engine/parallel.py": textwrap.dedent(
        """
        import threading
        from concurrent.futures import ProcessPoolExecutor


        def _init_worker(state):
            return state


        class ParallelExecutor:
            def __init__(self):
                self._pool_lock = threading.Lock()

            def pool(self):
                # Parent-side locking around fork is fine; only the
                # worker-side functions must stay lock-free.
                with self._pool_lock:
                    return ProcessPoolExecutor(initializer=_init_worker)
        """
    ),
}


def test_service_violations_trip_only_lock_discipline(build_tree, run_all_passes):
    findings = run_all_passes(build_tree(VIOLATING_SERVICE))
    assert rules_of(findings) == {"lock-discipline"}
    assert checks_of(findings) == {
        ("lock-discipline", "mutate-outside-write-lock"),
        ("lock-discipline", "read-escalation"),
        ("lock-discipline", "lock-held-caller"),
    }
    by_check = {f.check: f for f in findings}
    assert "unlocked_write" in by_check["mutate-outside-write-lock"].symbol
    assert "forgetful_caller" in by_check["lock-held-caller"].symbol


def test_fork_boundary_violations_trip_only_lock_discipline(
    build_tree, run_all_passes
):
    findings = run_all_passes(build_tree(VIOLATING_FORK))
    assert rules_of(findings) == {"lock-discipline"}
    assert {f.check for f in findings} == {"fork-lock"}
    assert {f.symbol for f in findings} == {"_init_worker", "_run_chunk"}


def test_clean_fixture_passes(build_tree, run_all_passes):
    assert run_all_passes(build_tree(CLEAN)) == []
