"""determinism: unseeded random, wall clock, set-order leaks."""

import textwrap

from .conftest import checks_of, rules_of

VIOLATING = {
    "constraints/rules.py": textwrap.dedent(
        """
        import random
        import time


        def pick(items):
            return random.choice(items)


        def stamp():
            return time.time()


        def leak_order(names):
            chosen = set(names)
            return [name for name in chosen]


        def fetch(keys):
            fetched = []
            for key in keys:
                fetched.append(key)
            return fetched


        def call_with_set(names):
            keys = set(names)
            return fetch(keys)
        """
    ),
}

CLEAN = {
    "constraints/rules.py": textwrap.dedent(
        """
        import random
        import time


        def pick(items, seed):
            return random.Random(seed).choice(items)


        def stamp():
            return time.perf_counter()


        def no_leak(names):
            chosen = set(names)
            return sorted(chosen)


        def reductions(names):
            chosen = set(names)
            total = sum(1 for name in chosen if name)
            biggest = max(chosen)
            rebuilt = {name for name in chosen}
            return total, biggest, len(chosen), rebuilt


        def fetch(keys):
            fetched = []
            for key in keys:
                fetched.append(key)
            return fetched


        def call_with_sorted(names):
            keys = set(names)
            return fetch(sorted(keys))


        def membership_is_fine(names, name):
            keys = set(names)
            return name in keys
        """
    ),
}


def test_violating_fixture_trips_only_determinism(build_tree, run_all_passes):
    findings = run_all_passes(build_tree(VIOLATING))
    assert rules_of(findings) == {"determinism"}
    assert checks_of(findings) == {
        ("determinism", "unseeded-random"),
        ("determinism", "wall-clock"),
        ("determinism", "set-iteration"),
        ("determinism", "set-argument"),
    }
    by_check = {f.check: f for f in findings}
    assert "pick" in by_check["unseeded-random"].symbol
    assert "call_with_set->fetch:keys" in by_check["set-argument"].symbol


def test_clean_fixture_passes(build_tree, run_all_passes):
    assert run_all_passes(build_tree(CLEAN)) == []


def test_dict_iteration_is_not_flagged(build_tree, run_all_passes):
    files = {
        "engine/maps.py": textwrap.dedent(
            """
            def walk(pairs):
                table = dict(pairs)
                return [key for key in table]
            """
        ),
    }
    assert run_all_passes(build_tree(files)) == []
