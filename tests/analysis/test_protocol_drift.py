"""protocol-drift: ops, dispatch, error registry and docs in lockstep."""

import textwrap

from .conftest import checks_of, rules_of

VIOLATING = {
    "server/protocol.py": textwrap.dedent(
        """
        OPS = ("optimize", "execute", "stats", "insert")
        MUTATION_OPS = ("insert",)
        """
    ),
    "server/gateway.py": textwrap.dedent(
        """
        from .protocol import MUTATION_OPS


        class Gateway:
            def dispatch(self, request):
                if request.op == "optimize":
                    return 1
                if request.op == "legacy":
                    return 2
                if request.op in MUTATION_OPS:
                    return 3
                return 4
        """
    ),
    "server/errors.py": textwrap.dedent(
        '''
        class GatewayError(Exception):
            code = "internal"


        class OverloadedError(GatewayError):
            code = "internal"
        '''
    ),
    "server/session.py": textwrap.dedent(
        '''
        class RogueError(Exception):
            code = "rogue"
        '''
    ),
}

CLEAN = {
    "server/protocol.py": textwrap.dedent(
        """
        OPS = ("optimize", "execute", "stats", "insert", "delete")
        MUTATION_OPS = ("insert", "delete")
        """
    ),
    "server/gateway.py": textwrap.dedent(
        """
        from .protocol import MUTATION_OPS


        class Gateway:
            def dispatch(self, request):
                if request.op == "stats":
                    return 0
                if request.op == "optimize":
                    return 1
                if request.op == "execute":
                    return 2
                if request.op in MUTATION_OPS:
                    return 3
                raise ValueError(request.op)
        """
    ),
    "server/errors.py": textwrap.dedent(
        '''
        class GatewayError(Exception):
            code = "internal"


        class OverloadedError(GatewayError):
            code = "overloaded"
        '''
    ),
}

CLEAN_DOC = {
    "operations.md": "Ops: `optimize`, `execute`, `stats`, `insert`,"
    " `delete`.\nCodes: `internal`, `overloaded`.\n"
}


def test_violating_fixture_trips_only_protocol_drift(build_tree, run_all_passes):
    findings = run_all_passes(build_tree(VIOLATING))
    assert rules_of(findings) == {"protocol-drift"}
    assert checks_of(findings) == {
        ("protocol-drift", "gateway-dispatch"),
        ("protocol-drift", "unknown-op-dispatch"),
        ("protocol-drift", "duplicate-error-code"),
        ("protocol-drift", "error-class-outside-registry"),
    }
    by_check = {}
    for finding in findings:
        by_check.setdefault(finding.check, set()).add(finding.symbol)
    # execute and stats have no branch; insert is covered via MUTATION_OPS.
    assert by_check["gateway-dispatch"] == {"execute", "stats"}
    assert by_check["unknown-op-dispatch"] == {"legacy"}
    assert by_check["error-class-outside-registry"] == {"RogueError"}


def test_clean_fixture_passes_with_docs(build_tree, run_all_passes):
    assert run_all_passes(build_tree(CLEAN, docs=CLEAN_DOC)) == []


def test_doc_gaps_are_flagged(build_tree, run_all_passes):
    docs = {"operations.md": "Ops: `optimize`, `execute`, `stats`, `insert`.\n"}
    findings = run_all_passes(build_tree(CLEAN, docs=docs))
    assert rules_of(findings) == {"protocol-drift"}
    assert checks_of(findings) == {
        ("protocol-drift", "op-undocumented"),
        ("protocol-drift", "error-code-undocumented"),
    }
    symbols = {f.symbol for f in findings}
    assert symbols == {"delete", "internal", "overloaded"}


def test_docless_context_skips_doc_checks(build_tree, run_all_passes):
    assert run_all_passes(build_tree(CLEAN)) == []
