"""Fixture plumbing for the static-analysis tests.

Each pass is tested against tiny materialized package trees: a dict of
``relpath -> source`` is written under ``tmp_path`` and analyzed exactly
as the live tree is — same context, same passes — so a fixture that
trips one rule proves the rule, and a fixture that trips *only* that
rule proves the passes do not bleed into each other.
"""

from pathlib import Path
from typing import Dict, Optional

import pytest

from repro.analysis import AnalysisContext, all_passes, run_analysis


@pytest.fixture
def build_tree(tmp_path):
    """Materialize ``{relpath: source}`` into a package dir named repro."""

    def build(
        files: Dict[str, str], docs: Optional[Dict[str, str]] = None
    ) -> AnalysisContext:
        package_root = tmp_path / "repro"
        for relpath, source in files.items():
            path = package_root / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        package_root.mkdir(exist_ok=True)
        docs_root = None
        if docs is not None:
            docs_root = tmp_path / "docs"
            docs_root.mkdir(exist_ok=True)
            for name, text in docs.items():
                (docs_root / name).write_text(text, encoding="utf-8")
        return AnalysisContext(package_root, docs_root=docs_root)

    return build


@pytest.fixture
def run_all_passes():
    """Run every registered pass over a context; returns the findings."""

    def run(context: AnalysisContext):
        return run_analysis(context, all_passes()).findings

    return run


def rules_of(findings) -> set:
    return {finding.rule for finding in findings}


def checks_of(findings) -> set:
    return {(finding.rule, finding.check) for finding in findings}
