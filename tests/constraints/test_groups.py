"""Unit tests for constraint grouping."""

import pytest

from repro.constraints import (
    ConstraintError,
    ConstraintGrouping,
    GroupingPolicy,
    build_example_constraints,
    build_grouping,
)
from repro.schema import AccessStatistics


CLASSES = [
    "supplier",
    "cargo",
    "vehicle",
    "engine",
    "employee",
    "manager",
    "driver",
    "supervisor",
    "department",
]


def test_arbitrary_policy_is_deterministic():
    constraints = build_example_constraints()
    grouping = build_grouping(CLASSES, constraints, policy=GroupingPolicy.ARBITRARY)
    again = build_grouping(CLASSES, constraints, policy=GroupingPolicy.ARBITRARY)
    assert grouping.group_sizes() == again.group_sizes()
    # c1 references cargo & vehicle -> alphabetically first is cargo.
    assert any(c.name == "c1" for c in grouping.group("cargo"))


def test_least_frequent_policy_prefers_cold_classes():
    constraints = build_example_constraints()
    stats = AccessStatistics({"cargo": 100, "vehicle": 1, "supplier": 50})
    grouping = build_grouping(
        CLASSES,
        constraints,
        policy=GroupingPolicy.LEAST_FREQUENT,
        statistics=stats,
    )
    # c1 (cargo, vehicle) goes to the rarely accessed vehicle group.
    assert any(c.name == "c1" for c in grouping.group("vehicle"))


def test_balanced_policy_spreads_constraints():
    constraints = build_example_constraints()
    grouping = build_grouping(CLASSES, constraints, policy=GroupingPolicy.BALANCED)
    assert max(grouping.group_sizes().values()) <= 2


def test_fetch_only_touches_query_classes():
    constraints = build_example_constraints()
    grouping = build_grouping(CLASSES, constraints, policy=GroupingPolicy.ARBITRARY)
    fetched = grouping.fetch({"manager"})
    assert {c.name for c in fetched} == {"c4"}


def test_retrieval_is_complete_for_any_query():
    """The paper's correctness argument: relevant constraints are never missed."""
    constraints = build_example_constraints()
    for policy in GroupingPolicy:
        grouping = build_grouping(CLASSES, constraints, policy=policy)
        for classes in (
            {"cargo", "vehicle"},
            {"supplier", "cargo", "vehicle"},
            {"employee", "department"},
            {"manager"},
            {"engine"},
        ):
            assert grouping.verify_complete(constraints, classes)


def test_retrieve_relevant_filters_and_reports_stats():
    constraints = build_example_constraints()
    grouping = build_grouping(CLASSES, constraints, policy=GroupingPolicy.ARBITRARY)
    relevant, stats = grouping.retrieve_relevant({"cargo", "vehicle"})
    assert {c.name for c in relevant} == {"c1"}
    assert stats.relevant == 1
    assert stats.fetched >= stats.relevant
    assert 0.0 <= stats.precision <= 1.0
    assert stats.irrelevant == stats.fetched - stats.relevant


def test_retrieve_relevant_respects_relationships():
    constraints = build_example_constraints()
    grouping = build_grouping(CLASSES, constraints, policy=GroupingPolicy.ARBITRARY)
    relevant, _stats = grouping.retrieve_relevant(
        {"cargo", "vehicle"}, query_relationships={"engComp"}
    )
    assert relevant == []


def test_rebuild_regroups_after_statistics_change():
    constraints = build_example_constraints()
    grouping = build_grouping(
        CLASSES, constraints, policy=GroupingPolicy.LEAST_FREQUENT
    )
    hot = AccessStatistics({"vehicle": 100, "cargo": 1})
    grouping.rebuild(constraints, statistics=hot)
    assert any(c.name == "c1" for c in grouping.group("cargo"))


def test_unknown_class_raises():
    constraints = build_example_constraints()
    grouping = build_grouping(CLASSES, constraints)
    with pytest.raises(ConstraintError):
        grouping.group("warehouse")
    with pytest.raises(ConstraintError):
        ConstraintGrouping([])


def test_unplaceable_constraint_raises():
    constraints = build_example_constraints()
    grouping = ConstraintGrouping(["warehouse"])
    with pytest.raises(ConstraintError):
        grouping.assign(constraints[0])
