"""Unit tests for Horn-clause semantic constraints."""

import pytest

from repro.constraints import (
    ConstraintClass,
    ConstraintError,
    Predicate,
    SemanticConstraint,
    build_example_constraints,
    example_constraints_by_name,
    fresh_name,
    unique_constraints,
)


def test_example_constraint_classification():
    constraints = example_constraints_by_name()
    assert constraints["c4"].classification is ConstraintClass.INTRA
    for name in ("c1", "c2", "c3", "c5"):
        assert constraints[name].classification is ConstraintClass.INTER


def test_referenced_classes_include_anchors():
    c3 = example_constraints_by_name()["c3"]
    assert c3.referenced_classes() == frozenset({"driver", "vehicle"})
    assert c3.anchor_relationships == frozenset({"drives"})


def test_relevance_requires_all_classes():
    c1 = example_constraints_by_name()["c1"]
    assert c1.is_relevant_to({"cargo", "vehicle", "supplier"})
    assert not c1.is_relevant_to({"cargo", "supplier"})


def test_relevance_requires_anchor_relationships_when_given():
    c1 = example_constraints_by_name()["c1"]
    assert c1.is_relevant_to({"cargo", "vehicle"}, {"collects"})
    assert not c1.is_relevant_to({"cargo", "vehicle"}, {"drives"})
    # Without a relationship list the class test alone decides.
    assert c1.is_relevant_to({"cargo", "vehicle"})


def test_trivial_constraint_rejected():
    p = Predicate.equals("cargo.desc", "frozen food")
    with pytest.raises(ConstraintError):
        SemanticConstraint.build("broken", [p], p)


def test_empty_name_rejected():
    with pytest.raises(ConstraintError):
        SemanticConstraint.build(
            "", [], Predicate.equals("cargo.desc", "frozen food")
        )


def test_holds_for_material_implication():
    c1 = example_constraints_by_name()["c1"]
    satisfied = {
        "vehicle": {"desc": "refrigerated truck"},
        "cargo": {"desc": "frozen food"},
    }
    violated = {
        "vehicle": {"desc": "refrigerated truck"},
        "cargo": {"desc": "textiles"},
    }
    antecedent_false = {
        "vehicle": {"desc": "van"},
        "cargo": {"desc": "textiles"},
    }
    assert c1.holds_for(satisfied)
    assert not c1.holds_for(violated)
    assert c1.holds_for(antecedent_false)


def test_predicates_and_membership():
    c1 = example_constraints_by_name()["c1"]
    assert len(c1.predicates()) == 2
    assert c1.has_antecedent(Predicate.equals("vehicle.desc", "refrigerated truck"))
    assert c1.is_consequent(Predicate.equals("cargo.desc", "frozen food"))
    assert not c1.has_antecedent(Predicate.equals("cargo.desc", "frozen food"))


def test_unique_constraints_drops_duplicates():
    constraints = build_example_constraints()
    duplicated = constraints + [constraints[0].renamed("c1_copy")]
    assert len(unique_constraints(tuple(duplicated))) == len(constraints)


def test_fresh_name_avoids_collisions():
    name = fresh_name("c", {"c1", "c2"})
    assert name == "c3"
    assert fresh_name("x", set()) == "x1"


def test_signature_ignores_name():
    constraints = build_example_constraints()
    assert (
        constraints[0].signature() == constraints[0].renamed("other").signature()
    )
    assert constraints[0].signature() != constraints[1].signature()
