"""Unit tests for predicates."""

import pytest

from repro.constraints import ComparisonOperator, Predicate, attribute_operand, parse_operator


def test_selection_predicate_basics():
    predicate = Predicate.equals("cargo.desc", "frozen food")
    assert predicate.is_selection and not predicate.is_join
    assert predicate.constant == "frozen food"
    assert predicate.referenced_classes() == frozenset({"cargo"})
    assert str(predicate) == 'cargo.desc = "frozen food"'


def test_comparison_predicate_basics():
    predicate = Predicate.comparison("driver.licenseClass", ">=", "vehicle.class")
    assert predicate.is_join
    assert predicate.constant is None
    assert predicate.referenced_classes() == frozenset({"driver", "vehicle"})


def test_same_class_comparison_is_not_join():
    predicate = Predicate.comparison("cargo.quantity", ">", "cargo.code")
    assert not predicate.is_join
    assert predicate.referenced_classes() == frozenset({"cargo"})


def test_operator_aliases():
    assert parse_operator("equal") is ComparisonOperator.EQ
    assert parse_operator("greaterThanOrEqualTo") is ComparisonOperator.GE
    assert parse_operator("<>") is ComparisonOperator.NE
    with pytest.raises(ValueError):
        parse_operator("approximately")


def test_operator_apply_and_type_mismatch():
    assert ComparisonOperator.LT.apply(1, 2)
    assert not ComparisonOperator.LT.apply("a", 2)
    assert ComparisonOperator.NE.apply("a", "b")


def test_normalization_orients_attribute_comparisons():
    forward = Predicate.comparison("driver.licenseClass", ">=", "vehicle.class")
    backward = Predicate.comparison("vehicle.class", "<=", "driver.licenseClass")
    assert forward.normalized() == backward.normalized()
    assert forward.key() == backward.key()


def test_negation():
    predicate = Predicate.selection("cargo.quantity", ">", 10)
    negated = predicate.negated()
    assert negated.operator is ComparisonOperator.LE
    assert negated.negated().operator is ComparisonOperator.GT


def test_evaluate_selection():
    predicate = Predicate.equals("cargo.desc", "frozen food")
    assert predicate.evaluate({"cargo": {"desc": "frozen food"}})
    assert not predicate.evaluate({"cargo": {"desc": "textiles"}})
    assert not predicate.evaluate({})
    assert not predicate.evaluate({"cargo": {}})


def test_evaluate_comparison():
    predicate = Predicate.comparison("driver.licenseClass", ">=", "vehicle.class")
    assert predicate.evaluate(
        {"driver": {"licenseClass": 4}, "vehicle": {"class": 3}}
    )
    assert not predicate.evaluate(
        {"driver": {"licenseClass": 2}, "vehicle": {"class": 3}}
    )
    assert not predicate.evaluate({"driver": {"licenseClass": 2}})


def test_substitute_class():
    predicate = Predicate.equals("employee.clearance", "top secret")
    renamed = predicate.substitute_class("employee", "driver")
    assert renamed.left.class_name == "driver"
    assert renamed.references_class("driver")


def test_references_attribute():
    predicate = Predicate.equals("cargo.desc", "frozen food")
    assert predicate.references_attribute("cargo.desc")
    assert not predicate.references_attribute("cargo.quantity")


def test_attribute_operand_parsing():
    operand = attribute_operand("cargo.desc")
    assert operand.qualified_name == "cargo.desc"
    with pytest.raises(ValueError):
        attribute_operand("nodot")
    with pytest.raises(ValueError):
        attribute_operand(".desc")
