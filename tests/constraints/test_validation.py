"""Unit tests for integrity validation against semantic constraints."""

import pytest

from repro.constraints import (
    Predicate,
    SemanticConstraint,
    assert_valid,
    validate_database,
)
from repro.constraints.validation import connectivity_order, enumerate_bindings
from repro.data import build_evaluation_schema
from repro.engine import ObjectStore


@pytest.fixture()
def small_store():
    schema = build_evaluation_schema()
    store = ObjectStore(schema)
    supplier = store.insert("supplier", {"name": "SFI", "region": "west", "rating": 4})
    cargo = store.insert(
        "cargo",
        {"desc": "frozen food", "category": "perishable", "quantity": 100,
         "supplies": supplier.oid},
    )
    store.update("supplier", supplier.oid, {"supplies": cargo.oid})
    return schema, store


def test_validation_passes_on_consistent_data(small_store):
    schema, store = small_store
    constraint = SemanticConstraint.build(
        "ok",
        [Predicate.equals("cargo.desc", "frozen food")],
        Predicate.equals("supplier.name", "SFI"),
        anchor_classes={"supplier", "cargo"},
        anchor_relationships={"supplies"},
    )
    report = validate_database(schema, store, [constraint])
    assert report.is_valid
    assert report.bindings_checked >= 1
    assert "VALID" in report.summary()
    assert_valid(schema, store, [constraint])


def test_validation_detects_violation(small_store):
    schema, store = small_store
    constraint = SemanticConstraint.build(
        "broken",
        [Predicate.equals("cargo.desc", "frozen food")],
        Predicate.equals("supplier.name", "Acme"),
        anchor_classes={"supplier", "cargo"},
        anchor_relationships={"supplies"},
    )
    report = validate_database(schema, store, [constraint])
    assert not report.is_valid
    assert report.violations[0].constraint == "broken"
    with pytest.raises(AssertionError):
        assert_valid(schema, store, [constraint])


def test_intra_class_validation(small_store):
    schema, store = small_store
    constraint = SemanticConstraint.build(
        "intra",
        [Predicate.equals("cargo.category", "perishable")],
        Predicate.equals("cargo.desc", "frozen food"),
        anchor_classes={"cargo"},
    )
    assert validate_database(schema, store, [constraint]).is_valid


def test_enumerate_bindings_follows_relationships(small_store):
    schema, store = small_store
    bindings = list(enumerate_bindings(schema, store, ["supplier", "cargo"]))
    assert len(bindings) == 1
    binding = bindings[0]
    assert binding["supplier"].values["name"] == "SFI"
    assert binding["cargo"].values["desc"] == "frozen food"


def test_connectivity_order_prefers_connected_sequences():
    schema = build_evaluation_schema()
    ordered = connectivity_order(schema, ["driver", "supplier", "cargo"])
    assert ordered[0] == "driver"
    # supplier connects to neither driver nor... actually supplier-cargo via
    # supplies; cargo connects to neither driver directly, but the order must
    # keep connected classes adjacent to an earlier one when possible.
    assert set(ordered) == {"driver", "supplier", "cargo"}


def test_limit_per_class_caps_work(small_setup):
    report = validate_database(
        small_setup.schema,
        small_setup.store,
        small_setup.constraints,
        limit_per_class=5,
    )
    assert report.constraints_checked == len(small_setup.constraints)


def test_generated_database_is_consistent(small_setup):
    """The constraint-enforcement pass must leave no violations behind."""
    report = validate_database(
        small_setup.schema, small_setup.store, small_setup.constraints
    )
    assert report.is_valid, report.summary()
