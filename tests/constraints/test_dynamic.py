"""Unit tests for dynamic (state-derived) rule derivation."""

from repro.constraints import (
    ConstraintOrigin,
    DerivationConfig,
    DynamicRuleDeriver,
    derive_rules,
    validate_database,
)
from repro.data import build_evaluation_schema
from repro.engine import ObjectStore


def build_store():
    schema = build_evaluation_schema()
    store = ObjectStore(schema)
    for index in range(6):
        store.insert(
            "cargo",
            {
                "code": f"C{index}",
                "desc": "frozen food" if index < 3 else "textiles",
                "category": "perishable" if index < 3 else "general",
                "quantity": 50 + index * 10,
            },
        )
    return schema, store


def test_range_rules_derived():
    schema, store = build_store()
    rules = derive_rules(schema, store, DerivationConfig(derive_functional=False))
    quantity_rules = [
        r for r in rules if r.consequent.left.qualified_name == "cargo.quantity"
    ]
    assert len(quantity_rules) == 2
    bounds = {r.consequent.operator.value: r.consequent.constant for r in quantity_rules}
    assert bounds[">="] == 50 and bounds["<="] == 100
    assert all(r.origin is ConstraintOrigin.DERIVED for r in rules)


def test_functional_rules_derived():
    schema, store = build_store()
    rules = derive_rules(schema, store, DerivationConfig(derive_ranges=False))
    found = [
        r
        for r in rules
        if r.antecedents
        and r.antecedents[0].references_attribute("cargo.category")
        and r.consequent.references_attribute("cargo.desc")
        and r.antecedents[0].constant == "perishable"
    ]
    assert found
    assert found[0].consequent.constant == "frozen food"


def test_min_support_filters_singletons():
    schema, store = build_store()
    store.insert(
        "cargo",
        {"code": "C9", "desc": "unique", "category": "rare", "quantity": 10},
    )
    rules = derive_rules(
        schema, store, DerivationConfig(derive_ranges=False, min_support=2)
    )
    assert not any(
        r.antecedents and r.antecedents[0].constant == "rare" for r in rules
    )


def test_derived_rules_hold_in_current_state():
    schema, store = build_store()
    rules = derive_rules(schema, store)
    report = validate_database(schema, store, rules)
    assert report.is_valid


def test_existing_names_are_avoided():
    schema, store = build_store()
    deriver = DynamicRuleDeriver(schema)
    rules = deriver.derive(store, existing_names={"d1", "d2"})
    names = {r.name for r in rules}
    assert "d1" not in names and "d2" not in names


def test_restricting_classes():
    schema, store = build_store()
    deriver = DynamicRuleDeriver(schema)
    rules = deriver.derive(store, class_names=["vehicle"])
    assert rules == []
