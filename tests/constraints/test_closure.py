"""Unit tests for transitive-closure materialization."""

from repro.constraints import (
    ConstraintOrigin,
    Predicate,
    PredicateStore,
    SemanticConstraint,
    build_example_constraints,
    closure_reaches,
    compute_closure,
    implies,
)


def chain(name, antecedent, consequent):
    return SemanticConstraint.build(
        name,
        [antecedent],
        consequent,
        anchor_classes={"cargo"},
    )


def test_paper_closure_example():
    """(A = a) -> (B > 20) and (B > 10) -> (C = c) gives (A = a) -> (C = c)."""
    a = Predicate.equals("cargo.code", "a")
    b_strong = Predicate.selection("cargo.quantity", ">", 20)
    b_weak = Predicate.selection("cargo.quantity", ">", 10)
    c = Predicate.equals("cargo.desc", "c")
    result = compute_closure([chain("r1", a, b_strong), chain("r2", b_weak, c)])
    assert len(result.derived) == 1
    derived = result.derived[0]
    assert derived.origin is ConstraintOrigin.CLOSURE
    assert derived.antecedents == (a.normalized(),) or derived.antecedents == (a,)
    assert derived.consequent.normalized() == c.normalized()
    assert closure_reaches(result, a, c)


def test_closure_of_example_constraints_adds_c1_c2_chain():
    result = compute_closure(build_example_constraints())
    # c1: vehicle.desc=refrigerated -> cargo.desc=frozen; c2: cargo.desc=frozen
    # -> supplier.name=SFI; the chain introduces refrigerated -> SFI.
    assert closure_reaches(
        result,
        Predicate.equals("vehicle.desc", "refrigerated truck"),
        Predicate.equals("supplier.name", "SFI"),
    )
    chained = [c for c in result.derived if set(c.derived_from) == {"c1", "c2"}]
    assert chained
    assert chained[0].anchor_relationships == frozenset({"collects", "supplies"})


def test_closure_terminates_on_cycles():
    a = Predicate.equals("cargo.code", "a")
    b = Predicate.equals("cargo.desc", "b")
    result = compute_closure([chain("r1", a, b), chain("r2", b, a)])
    # The cycle adds no admissible constraint (each candidate is trivial).
    assert len(result.constraints) == 2


def test_closure_is_idempotent():
    once = compute_closure(build_example_constraints())
    twice = compute_closure(once.constraints)
    assert {c.signature() for c in twice.constraints} == {
        c.signature() for c in once.constraints
    }


def test_closure_respects_max_derived():
    constraints = [
        chain(
            f"r{i}",
            Predicate.selection("cargo.quantity", ">", 100 - i),
            Predicate.selection("cargo.quantity", ">", 100 - i - 1),
        )
        for i in range(10)
    ]
    result = compute_closure(constraints, max_derived=3)
    assert len(result.derived) == 3


def test_predicate_store_interns_equal_predicates():
    store = PredicateStore()
    first = store.intern(Predicate.equals("cargo.desc", "frozen food"))
    second = store.intern(Predicate.equals("cargo.desc", "frozen food"))
    assert first is second
    assert len(store) == 1
    assert store.predicates() == [first]


def test_derived_constraints_are_sound():
    """Every derived rule must follow from the originals on total bindings."""
    originals = build_example_constraints()
    result = compute_closure(originals)
    for derived in result.derived:
        # The derivation chains two rules; check the implication structure:
        # the producer's consequent implies an antecedent of the consumer.
        producer_name, consumer_name = derived.derived_from
        producer = next(c for c in result.constraints if c.name == producer_name)
        consumer = next(c for c in result.constraints if c.name == consumer_name)
        assert any(
            implies(producer.consequent, antecedent)
            for antecedent in consumer.antecedents
        )
