"""Unit tests for the constraint repository."""

import pytest

from repro.constraints import (
    ConstraintError,
    ConstraintRepository,
    GroupingPolicy,
    Predicate,
    SemanticConstraint,
)


def test_precompile_builds_closure_and_groups(example_repository):
    stats = example_repository.stats()
    assert stats.declared == 5
    assert stats.closed >= 5
    assert stats.derived >= 1
    assert stats.intra_class >= 1
    assert stats.distinct_predicates > 0
    assert sum(example_repository.group_sizes().values()) == stats.closed


def test_validation_rejects_unknown_attributes(example_schema):
    repository = ConstraintRepository(example_schema)
    bad = SemanticConstraint.build(
        "bad", [], Predicate.equals("cargo.colour", "red"), anchor_classes={"cargo"}
    )
    with pytest.raises(ConstraintError):
        repository.add(bad)


def test_validation_rejects_unknown_anchor_class(example_schema):
    repository = ConstraintRepository(example_schema)
    bad = SemanticConstraint.build(
        "bad",
        [],
        Predicate.equals("cargo.desc", "x"),
        anchor_classes={"warehouse"},
    )
    with pytest.raises(ConstraintError):
        repository.add(bad)


def test_duplicate_names_rejected(example_schema, example_constraints):
    repository = ConstraintRepository(example_schema)
    repository.add(example_constraints[0])
    with pytest.raises(ConstraintError):
        repository.add(example_constraints[0])


def test_remove_marks_dirty(example_schema, example_constraints):
    repository = ConstraintRepository(example_schema)
    repository.add_all(example_constraints)
    repository.precompile()
    before = len(repository)
    repository.remove("c4")
    assert len(repository) < before
    with pytest.raises(ConstraintError):
        repository.remove("c4")


def test_retrieve_relevant_for_paper_query(example_repository, paper_query):
    relevant, stats = example_repository.retrieve_relevant(
        paper_query.classes, query_relationships=paper_query.relationships
    )
    names = {c.name for c in relevant}
    # c1, c2 and the closure-derived chain are relevant; c3/c4/c5 are not.
    assert "c1" in names and "c2" in names
    assert "c3" not in names and "c4" not in names and "c5" not in names
    assert stats.relevant == len(relevant)


def test_retrieval_without_closure_misses_chained_rule(example_schema, example_constraints):
    repository = ConstraintRepository(
        example_schema, compute_transitive_closure=False
    )
    repository.add_all(example_constraints)
    repository.precompile()
    assert repository.stats().derived == 0
    assert len(repository) == 5


def test_access_statistics_recorded(example_repository):
    before = example_repository.statistics.queries_seen
    example_repository.retrieve_relevant(["cargo", "vehicle"])
    assert example_repository.statistics.queries_seen == before + 1
    example_repository.retrieve_relevant(["cargo"], record_access=False)
    assert example_repository.statistics.queries_seen == before + 1


def test_regroup_switches_policy(example_repository):
    example_repository.regroup(policy=GroupingPolicy.BALANCED)
    assert example_repository.policy is GroupingPolicy.BALANCED
    assert sum(example_repository.group_sizes().values()) == len(example_repository)


def test_requires_constraints_or_repository(example_schema):
    repository = ConstraintRepository(example_schema)
    # Precompiling an empty repository is allowed and yields no constraints.
    stats = repository.precompile()
    assert stats.closed == 0
