"""Tests for the repository's keyed retrieval and closure caches."""

import pytest

from repro.constraints import (
    ConstraintRepository,
    build_example_constraints,
    constraint_c1,
)


@pytest.fixture()
def repository(example_schema, example_constraints):
    repo = ConstraintRepository(example_schema)
    repo.add_all(example_constraints)
    repo.precompile()
    return repo


QUERY_CLASSES = ["supplier", "cargo", "vehicle"]
QUERY_RELATIONSHIPS = ["collects", "supplies"]


def test_hit_and_miss_accounting(repository):
    first, first_stats = repository.retrieve_relevant(
        QUERY_CLASSES, QUERY_RELATIONSHIPS
    )
    second, second_stats = repository.retrieve_relevant(
        QUERY_CLASSES, QUERY_RELATIONSHIPS
    )
    assert not first_stats.cache_hit
    assert second_stats.cache_hit
    # The cached answer carries the original retrieval's bookkeeping.
    assert second_stats.fetched == first_stats.fetched
    assert second_stats.relevant == first_stats.relevant
    assert [c.name for c in second] == [c.name for c in first]
    stats = repository.cache_stats()
    assert stats.retrieval_hits == 1
    assert stats.retrieval_misses == 1
    assert stats.retrieval_hit_rate == 0.5


def test_class_order_does_not_matter(repository):
    repository.retrieve_relevant(QUERY_CLASSES, QUERY_RELATIONSHIPS)
    _, stats = repository.retrieve_relevant(
        list(reversed(QUERY_CLASSES)), list(reversed(QUERY_RELATIONSHIPS))
    )
    assert stats.cache_hit


def test_different_relationships_are_distinct_entries(repository):
    repository.retrieve_relevant(QUERY_CLASSES, ["collects"])
    _, stats = repository.retrieve_relevant(QUERY_CLASSES, ["supplies"])
    assert not stats.cache_hit


def test_cache_invalidated_on_remove(repository):
    relevant, _ = repository.retrieve_relevant(QUERY_CLASSES, QUERY_RELATIONSHIPS)
    assert any(c.name == "c1" or c.derived_from for c in relevant)
    generation = repository.generation

    repository.remove("c1")
    assert repository.generation > generation
    after, stats = repository.retrieve_relevant(QUERY_CLASSES, QUERY_RELATIONSHIPS)
    assert not stats.cache_hit
    assert all(c.name != "c1" for c in after)


def test_cache_invalidated_on_add(repository):
    repository.remove("c1")
    before, _ = repository.retrieve_relevant(QUERY_CLASSES, QUERY_RELATIONSHIPS)
    assert all(c.name != "c1" for c in before)

    repository.add(constraint_c1())
    after, stats = repository.retrieve_relevant(QUERY_CLASSES, QUERY_RELATIONSHIPS)
    assert not stats.cache_hit
    assert any(c.name == "c1" for c in after)


def test_cache_size_bound_evicts_lru(example_schema, example_constraints):
    repo = ConstraintRepository(example_schema, retrieval_cache_size=2)
    repo.add_all(example_constraints)
    repo.precompile()
    for classes in (["supplier"], ["cargo"], ["vehicle"]):
        repo.retrieve_relevant(classes)
    stats = repo.cache_stats()
    assert stats.retrieval_entries == 2
    assert stats.retrieval_evictions == 1
    # The oldest entry is gone, the newest still present.
    _, oldest = repo.retrieve_relevant(["supplier"])
    assert not oldest.cache_hit
    _, newest = repo.retrieve_relevant(["vehicle"])
    assert newest.cache_hit


def test_cache_can_be_disabled(example_schema, example_constraints):
    repo = ConstraintRepository(example_schema, retrieval_cache_size=0)
    repo.add_all(example_constraints)
    repo.precompile()
    repo.retrieve_relevant(QUERY_CLASSES, QUERY_RELATIONSHIPS)
    _, stats = repo.retrieve_relevant(QUERY_CLASSES, QUERY_RELATIONSHIPS)
    assert not stats.cache_hit
    cache = repo.cache_stats()
    assert cache.retrieval_hits == 0
    assert cache.retrieval_misses == 0


def test_cached_answer_matches_uncached(example_schema, example_constraints):
    cached = ConstraintRepository(example_schema)
    uncached = ConstraintRepository(example_schema, retrieval_cache_size=0)
    for repo in (cached, uncached):
        repo.add_all(build_example_constraints())
        repo.precompile()
    cached.retrieve_relevant(QUERY_CLASSES, QUERY_RELATIONSHIPS)  # warm
    from_cache, stats = cached.retrieve_relevant(QUERY_CLASSES, QUERY_RELATIONSHIPS)
    plain, _ = uncached.retrieve_relevant(QUERY_CLASSES, QUERY_RELATIONSHIPS)
    assert stats.cache_hit
    assert sorted(c.name for c in from_cache) == sorted(c.name for c in plain)


def test_closure_reused_across_identical_precompiles(repository):
    assert repository.cache_stats().closure_misses == 1
    # Remove and re-add the same constraint: the declared set cycles back to
    # one already closed, so the second precompile reuses the materialized
    # closure instead of recomputing the fixpoint.
    repository.remove("c1")
    repository.precompile()
    repository.add(constraint_c1())
    repository.precompile()
    stats = repository.cache_stats()
    assert stats.closure_hits >= 1
    assert len(repository) > 0


def test_closure_cache_keyed_on_constraint_names(repository):
    """Re-declaring the same logic under a new name must not resurrect the
    removed constraint's identity from a cached closure."""
    from dataclasses import replace

    original = next(c for c in repository.declared() if c.name == "c1")
    repository.remove("c1")
    repository.add(replace(original, name="c1_renamed"))
    compiled_names = {c.name for c in repository.constraints()}
    assert "c1_renamed" in compiled_names
    assert "c1" not in compiled_names


def test_mutation_while_cache_warm_never_serves_stale(repository):
    warm, _ = repository.retrieve_relevant(QUERY_CLASSES, QUERY_RELATIONSHIPS)
    repository.remove("c2")
    refreshed, stats = repository.retrieve_relevant(
        QUERY_CLASSES, QUERY_RELATIONSHIPS
    )
    assert not stats.cache_hit
    assert {c.name for c in refreshed} <= {c.name for c in warm}
    assert all(c.name != "c2" for c in refreshed)
