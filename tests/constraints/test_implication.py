"""Unit and property-based tests for predicate implication."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import Predicate, conflicts, implies, is_subsumed_by_any, strongest


def pred(op, value, attr="cargo.quantity"):
    return Predicate.selection(attr, op, value)


def test_identical_predicates_imply_each_other():
    p = Predicate.equals("cargo.desc", "frozen food")
    assert implies(p, p)


def test_equality_implies_ranges():
    assert implies(pred("=", 25), pred(">", 10))
    assert implies(pred("=", 25), pred("<=", 25))
    assert not implies(pred("=", 25), pred(">", 30))
    assert implies(pred("=", 25), pred("!=", 30))
    assert not implies(pred("=", 25), pred("!=", 25))


def test_range_subsumption():
    assert implies(pred(">", 20), pred(">", 10))
    assert implies(pred(">=", 20), pred(">", 10))
    assert not implies(pred(">", 10), pred(">", 20))
    assert implies(pred("<", 5), pred("<=", 5))
    assert not implies(pred("<=", 5), pred("<", 5))


def test_range_implies_not_equal_outside():
    assert implies(pred(">", 10), pred("!=", 5))
    assert not implies(pred(">", 10), pred("!=", 20))


def test_different_attributes_never_imply():
    assert not implies(pred("=", 5), pred("=", 5, attr="cargo.code"))


def test_join_predicates_only_imply_identical():
    join = Predicate.comparison("driver.licenseClass", ">=", "vehicle.class")
    same = Predicate.comparison("vehicle.class", "<=", "driver.licenseClass")
    other = Predicate.comparison("driver.licenseClass", ">", "vehicle.class")
    assert implies(join, same)
    assert not implies(join, other)


def test_conflicts():
    assert conflicts(pred("=", 5), pred("=", 6))
    assert conflicts(pred("<", 5), pred(">", 10))
    assert not conflicts(pred(">", 5), pred("<", 10))
    assert not conflicts(pred("=", 5), pred("=", 5, attr="cargo.code"))


def test_is_subsumed_by_any_and_strongest():
    weak = pred(">", 10)
    strong = pred(">", 20)
    assert is_subsumed_by_any(weak, [strong])
    assert not is_subsumed_by_any(strong, [weak])
    survivors = strongest([weak, strong])
    assert survivors == [strong]


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
operators = st.sampled_from(["=", "<", "<=", ">", ">="])
values = st.integers(min_value=-50, max_value=50)


@settings(max_examples=60, deadline=None)
@given(op_a=operators, a=values, op_b=operators, b=values, witness=values)
def test_implication_is_sound_on_witnesses(op_a, a, op_b, b, witness):
    """If p implies q then every witness satisfying p satisfies q."""
    p = pred(op_a, a)
    q = pred(op_b, b)
    if implies(p, q):
        binding = {"cargo": {"quantity": witness}}
        if p.evaluate(binding):
            assert q.evaluate(binding)


@settings(max_examples=40, deadline=None)
@given(op_a=operators, a=values, op_b=operators, b=values, witness=values)
def test_conflict_is_sound_on_witnesses(op_a, a, op_b, b, witness):
    """If p and q conflict, no witness satisfies both."""
    p = pred(op_a, a)
    q = pred(op_b, b)
    if conflicts(p, q):
        binding = {"cargo": {"quantity": witness}}
        assert not (p.evaluate(binding) and q.evaluate(binding))


@settings(max_examples=40, deadline=None)
@given(op=operators, value=values)
def test_implication_is_reflexive(op, value):
    predicate = pred(op, value)
    assert implies(predicate, predicate)
