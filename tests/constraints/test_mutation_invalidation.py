"""Repository invalidation under the live write path.

Covers the two invalidation mechanisms the mutation path leans on:

* **closure freshness** — a dynamic rule re-derived from a *mutated*
  extent can never be served a stale memoized closure: the closure-cache
  key covers predicate values (``Predicate.key()`` includes the constant),
  so a moved bound is a different key by construction, while restoring a
  previously-seen rule set may legitimately reuse its memoized closure;
* **class-granular epochs** — add/remove bumps only the touched classes'
  generation counters, which is what lets the service keep serving cached
  optimizations for queries whose classes were untouched.
"""

import pytest

from repro.constraints import ConstraintRepository
from repro.constraints.dynamic import DerivationConfig, derive_rules
from repro.constraints.horn_clause import (
    ConstraintError,
    ConstraintOrigin,
    SemanticConstraint,
)
from repro.engine import ObjectStore
from repro.query import parse_predicate


def _seed(schema, quantities):
    store = ObjectStore(schema)
    for index, quantity in enumerate(quantities):
        store.insert(
            "cargo",
            {"code": f"C{index}", "desc": "frozen food", "quantity": quantity,
             "category": "general"},
        )
    return store


def _range_bounds(repository):
    """The (operator, constant) pairs of the closed cargo.quantity rules."""
    return {
        (c.consequent.operator.value, c.consequent.constant)
        for c in repository.constraints()
        if c.origin is ConstraintOrigin.DERIVED
        and "cargo.quantity" in str(c.consequent)
    }


def _derive_for(schema, store, repository):
    taken = {
        c.name
        for c in repository.declared()
        if c.origin is not ConstraintOrigin.DERIVED
    }
    return derive_rules(
        schema,
        store,
        config=DerivationConfig(derive_functional=False),
        existing_names=taken,
    )


def test_rederived_rule_never_serves_a_stale_closure(evaluation_schema):
    """The regression the write path depends on: mutate → re-derive → the
    closure must reflect the new extent even though the re-derived rules
    reuse the *names* of the rules they replace."""
    schema = evaluation_schema
    store = _seed(schema, [100, 200, 300])
    repository = ConstraintRepository(schema)
    repository.replace_derived(["cargo"], _derive_for(schema, store, repository))
    repository.precompile()
    assert _range_bounds(repository) == {(">=", 100), ("<=", 300)}

    # Mutate the extent and re-derive: same rule names ("d1", "d2"), new
    # bound values.  A closure cache keyed without predicate values would
    # serve the stale {100, 300} closure here.
    store.insert("cargo", {"code": "BIG", "desc": "frozen food",
                           "quantity": 9000, "category": "general"})
    changed = repository.replace_derived(
        ["cargo"], _derive_for(schema, store, repository)
    )
    assert changed
    repository.precompile()
    assert _range_bounds(repository) == {(">=", 100), ("<=", 9000)}

    # Restoring a previously-seen state MAY reuse the memoized closure —
    # that is the cache's purpose — but only with the matching bounds.
    store.delete("cargo", 4)
    hits_before = repository.cache_stats().closure_hits
    assert repository.replace_derived(
        ["cargo"], _derive_for(schema, store, repository)
    )
    repository.precompile()
    assert _range_bounds(repository) == {(">=", 100), ("<=", 300)}
    assert repository.cache_stats().closure_hits > hits_before


def test_replace_derived_is_a_noop_for_silent_writes(evaluation_schema):
    schema = evaluation_schema
    store = _seed(schema, [100, 150, 300])
    repository = ConstraintRepository(schema)
    repository.replace_derived(["cargo"], _derive_for(schema, store, repository))
    generation = repository.generation

    # A write strictly inside the observed bounds re-derives identical
    # rules: no epoch bump, no cache invalidation.
    store.update("cargo", 2, {"quantity": 200})
    assert not repository.replace_derived(
        ["cargo"], _derive_for(schema, store, repository)
    )
    assert repository.generation == generation


def test_replace_derived_rejects_non_derived_and_name_collisions(
    evaluation_schema,
):
    repository = ConstraintRepository(evaluation_schema)
    static = SemanticConstraint.build(
        name="s1",
        antecedents=[],
        consequent=parse_predicate("cargo.quantity >= 0"),
        anchor_classes={"cargo"},
    )
    repository.add(static)
    with pytest.raises(ConstraintError, match="DERIVED"):
        repository.replace_derived(["cargo"], [static])
    clash = SemanticConstraint.build(
        name="s1",
        antecedents=[],
        consequent=parse_predicate("cargo.quantity >= 1"),
        anchor_classes={"cargo"},
        origin=ConstraintOrigin.DERIVED,
    )
    with pytest.raises(ConstraintError, match="already declared"):
        repository.replace_derived(["cargo"], [clash])


def test_class_generations_bump_only_touched_classes(evaluation_schema):
    repository = ConstraintRepository(evaluation_schema)
    before_cargo = repository.class_generations(["cargo"])
    before_vehicle = repository.class_generations(["vehicle"])
    rule = SemanticConstraint.build(
        name="d1",
        antecedents=[],
        consequent=parse_predicate("cargo.quantity <= 500"),
        anchor_classes={"cargo"},
        origin=ConstraintOrigin.DERIVED,
    )
    repository.add(rule)
    assert repository.class_generations(["cargo"]) != before_cargo
    assert repository.class_generations(["vehicle"]) == before_vehicle
    repository.remove("d1")
    assert repository.class_generations(["vehicle"]) == before_vehicle
    # An inter-class constraint bumps every class it references.
    inter = SemanticConstraint.build(
        name="i1",
        antecedents=[parse_predicate('vehicle.desc = "refrigerated truck"')],
        consequent=parse_predicate('cargo.desc = "frozen food"'),
        anchor_classes={"cargo", "vehicle"},
        anchor_relationships={"collects"},
    )
    repository.add(inter)
    assert repository.class_generations(["vehicle"]) != before_vehicle
    # The tuple is ordered by class name: stable regardless of input order.
    assert repository.class_generations(["vehicle", "cargo"]) == (
        repository.class_generations(["cargo", "vehicle"])
    )


def test_service_cache_survives_unrelated_class_mutations(evaluation_schema):
    """The class-granular epoch keying observed from the service layer."""
    from repro.query import Query
    from repro.service import OptimizationService, ResultSource

    store = ObjectStore(evaluation_schema, shard_count=2)
    for i in range(4):
        store.insert("cargo", {"code": f"C{i}", "desc": "frozen food",
                               "quantity": 100 + i, "category": "general"})
        store.insert("vehicle", {"vehicle_no": f"V{i}", "desc": "van",
                                 "class": 2, "capacity": 1000})
    repository = ConstraintRepository(evaluation_schema)
    service = OptimizationService(
        evaluation_schema, repository=repository, store=store
    )
    service.enable_dynamic_rules(
        config=DerivationConfig(derive_functional=False)
    )
    cargo_query = Query(projections=("cargo.code",), selective_predicates=(),
                        classes=("cargo",), name="cargo-probe")
    vehicle_query = Query(projections=("vehicle.desc",), selective_predicates=(),
                          classes=("vehicle",), name="vehicle-probe")
    service.optimize(cargo_query)
    service.optimize(vehicle_query)

    # A cargo write that moves a bound: cargo recomputes, vehicle stays hot.
    result = service.mutate("insert", "cargo",
                            values={"code": "BIG", "desc": "frozen food",
                                    "quantity": 9999, "category": "general"})
    assert result.rules_changed
    assert service.optimize(cargo_query).source is ResultSource.COMPUTED
    assert service.optimize(vehicle_query).source is ResultSource.RESULT_CACHE
    service.close()
