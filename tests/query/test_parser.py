"""Unit tests for the query/predicate parser and formatter."""

import pytest

from repro.constraints import ComparisonOperator
from repro.query import (
    QueryParseError,
    format_query,
    parse_constant,
    parse_predicate,
    parse_query,
)
from repro.query.formatter import describe_query, format_predicate_list


def test_parse_infix_string_predicate():
    predicate = parse_predicate('vehicle.desc = "refrigerated truck"')
    assert predicate.left.qualified_name == "vehicle.desc"
    assert predicate.constant == "refrigerated truck"


def test_parse_infix_numeric_predicate():
    predicate = parse_predicate("cargo.quantity >= 50")
    assert predicate.operator is ComparisonOperator.GE
    assert predicate.constant == 50


def test_parse_functional_notation():
    predicate = parse_predicate('equal(cargo.desc, "frozen food")')
    assert predicate.operator is ComparisonOperator.EQ
    assert predicate.constant == "frozen food"
    join = parse_predicate(
        "greaterThanOrEqualTo(driver.licenseClass, vehicle.class)"
    )
    assert join.is_join


def test_parse_hash_attribute_aliases():
    predicate = parse_predicate('vehicle.vehicle# = "V1"')
    assert predicate.left.qualified_name == "vehicle.vehicle_no"


def test_parse_constants():
    assert parse_constant('"quoted"') == "quoted"
    assert parse_constant("42") == 42
    assert parse_constant("4.5") == 4.5
    assert parse_constant("true") is True
    assert parse_constant("False") is False
    with pytest.raises(QueryParseError):
        parse_constant("unquoted words")


def test_parse_bad_predicate():
    with pytest.raises(QueryParseError):
        parse_predicate("")
    with pytest.raises(QueryParseError):
        parse_predicate("no operator here")


def test_parse_paper_query(paper_query):
    assert paper_query.classes == ("supplier", "cargo", "vehicle")
    assert paper_query.relationships == ("collects", "supplies")
    assert paper_query.projections == (
        "vehicle.vehicle_no",
        "cargo.desc",
        "cargo.quantity",
    )
    assert len(paper_query.selective_predicates) == 2


def test_parse_query_with_annotated_projection():
    query = parse_query(
        '(SELECT {cargo.desc="frozen food", cargo.quantity} { } '
        '{vehicle.desc = "refrigerated truck"} {collects} {cargo, vehicle})'
    )
    assert query.projections == ("cargo.desc", "cargo.quantity")


def test_parse_query_requires_five_parts():
    with pytest.raises(QueryParseError):
        parse_query("(SELECT {a.b} { } {c, d})")
    with pytest.raises(QueryParseError):
        parse_query("{a.b} { } { } { } {x}")


def test_round_trip_through_formatter(paper_query):
    text = format_query(paper_query)
    reparsed = parse_query(text)
    assert reparsed.classes == paper_query.classes
    assert reparsed.relationships == paper_query.relationships
    assert {p.key() for p in reparsed.predicates()} == {
        p.key() for p in paper_query.predicates()
    }


def test_multiline_format(paper_query):
    rendered = format_query(paper_query, multiline=True)
    assert rendered.count("\n") == 4
    assert rendered.startswith("(SELECT")


def test_format_empty_lists():
    assert format_predicate_list(()) == "{ }"


def test_describe_query(paper_query):
    description = describe_query(paper_query)
    assert "3 classes" in description
    assert "2 selections" in description
