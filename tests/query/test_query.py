"""Unit tests for the five-part query representation."""

import pytest

from repro.constraints import Predicate
from repro.query import Query, QueryError


def make_query():
    return Query(
        projections=("vehicle.vehicle_no", "cargo.desc"),
        join_predicates=(),
        selective_predicates=(
            Predicate.equals("vehicle.desc", "refrigerated truck"),
            Predicate.equals("supplier.name", "SFI"),
        ),
        relationships=("collects", "supplies"),
        classes=("supplier", "cargo", "vehicle"),
        name="sample",
    )


def test_basic_accessors():
    query = make_query()
    assert query.class_count == 3
    assert query.referenced_classes() == frozenset({"supplier", "cargo", "vehicle"})
    assert query.projection_classes() == frozenset({"vehicle", "cargo"})
    assert query.predicate_classes() == frozenset({"vehicle", "supplier"})
    assert len(query.predicates()) == 2


def test_requires_at_least_one_class():
    with pytest.raises(QueryError):
        Query(classes=())


def test_duplicate_classes_rejected():
    with pytest.raises(QueryError):
        Query(classes=("cargo", "cargo"))


def test_has_predicate_is_normalization_aware():
    query = make_query()
    assert query.has_predicate(Predicate.equals("supplier.name", "SFI"))
    assert not query.has_predicate(Predicate.equals("supplier.name", "Acme"))


def test_add_selective_predicates_deduplicates():
    query = make_query()
    extended = query.add_selective_predicates(
        [
            Predicate.equals("supplier.name", "SFI"),
            Predicate.equals("cargo.desc", "frozen food"),
        ]
    )
    assert len(extended.selective_predicates) == 3
    # Original untouched (immutability).
    assert len(query.selective_predicates) == 2


def test_without_classes_drops_predicates_and_projections():
    query = make_query()
    reduced = query.without_classes(["supplier"])
    assert "supplier" not in reduced.classes
    assert all(
        not p.references_class("supplier") for p in reduced.predicates()
    )
    with pytest.raises(QueryError):
        query.without_classes(["supplier", "cargo", "vehicle"])


def test_keep_relationships():
    query = make_query()
    kept = query.keep_relationships(["collects"])
    assert kept.relationships == ("collects",)


def test_predicates_on():
    query = make_query()
    assert len(query.predicates_on("vehicle")) == 1
    assert query.predicates_on("cargo") == []


def test_validate_against_schema(example_schema):
    query = make_query()
    query.validate(example_schema)


def test_validate_rejects_unknown_class(example_schema):
    query = Query(classes=("warehouse",), projections=())
    with pytest.raises(QueryError):
        query.validate(example_schema)


def test_validate_rejects_predicate_outside_class_list(example_schema):
    query = Query(
        classes=("cargo",),
        selective_predicates=(Predicate.equals("vehicle.desc", "van"),),
    )
    with pytest.raises(QueryError):
        query.validate(example_schema)


def test_validate_rejects_relationship_outside_class_list(example_schema):
    query = Query(classes=("cargo", "vehicle"), relationships=("supplies",))
    with pytest.raises(QueryError):
        query.validate(example_schema)


def test_validate_rejects_unknown_attribute(example_schema):
    query = Query(
        classes=("cargo",),
        selective_predicates=(Predicate.equals("cargo.colour", "red"),),
    )
    with pytest.raises(QueryError):
        query.validate(example_schema)


def test_connected_components(example_schema):
    query = make_query()
    components = query.connected_components(example_schema)
    assert len(components) == 1
    disconnected = Query(classes=("cargo", "driver"), relationships=())
    assert len(disconnected.connected_components(example_schema)) == 2
