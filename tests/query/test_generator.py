"""Unit tests for the path-based workload generator."""

import pytest

from repro.constraints import Predicate
from repro.data import build_evaluation_schema
from repro.query import GeneratorConfig, QueryGenerator


CATALOG = {
    "cargo.desc": ["frozen food", "textiles"],
    "cargo.quantity": [10, 200],
    "vehicle.desc": ["refrigerated truck", "van"],
    "supplier.name": ["SFI", "Acme"],
    "driver.rank": ["senior"],
    "engine.fuel": ["diesel"],
}


@pytest.fixture()
def generator():
    return QueryGenerator(
        build_evaluation_schema(), value_catalog=CATALOG, seed=3
    )


def test_workload_size_and_validity(generator):
    schema = build_evaluation_schema()
    queries = generator.generate_workload(count=40)
    assert len(queries) == 40
    for query in queries:
        query.validate(schema)
        assert query.name


def test_workload_is_reproducible():
    schema = build_evaluation_schema()
    first = QueryGenerator(schema, CATALOG, seed=5).generate_workload(10)
    second = QueryGenerator(schema, CATALOG, seed=5).generate_workload(10)
    assert [str(q) for q in first] == [str(q) for q in second]
    different = QueryGenerator(schema, CATALOG, seed=6).generate_workload(10)
    assert [str(q) for q in first] != [str(q) for q in different]


def test_queries_follow_paths(generator):
    schema = build_evaluation_schema()
    for query in generator.generate_workload(count=20):
        # Each consecutive pair of classes must be connected by a listed
        # relationship: verify every relationship connects classes in query.
        for name in query.relationships:
            relationship = schema.relationship(name)
            assert relationship.source in query.classes
            assert relationship.target in query.classes


def test_selective_predicates_use_catalog_values(generator):
    for query in generator.generate_workload(count=20):
        for predicate in query.selective_predicates:
            qualified = predicate.left.qualified_name
            assert qualified in CATALOG
            assert predicate.constant in CATALOG[qualified]


def test_preferred_predicates_bias():
    schema = build_evaluation_schema()
    preferred = {"vehicle": [Predicate.equals("vehicle.desc", "refrigerated truck")]}
    generator = QueryGenerator(
        schema,
        value_catalog=CATALOG,
        config=GeneratorConfig(preferred_bias=1.0, selection_probability=1.0),
        seed=1,
        preferred_predicates=preferred,
    )
    queries = generator.generate_workload(count=10)
    vehicle_predicates = [
        p
        for q in queries
        for p in q.selective_predicates
        if p.left.class_name == "vehicle"
    ]
    assert vehicle_predicates
    assert all(p.constant == "refrigerated truck" for p in vehicle_predicates)


def test_queries_by_class_count(generator):
    by_count = generator.queries_by_class_count([1, 2, 3], per_count=4)
    assert set(by_count) == {1, 2, 3}
    for count, queries in by_count.items():
        assert len(queries) == 4
        assert all(q.class_count == count for q in queries)


def test_config_validation():
    with pytest.raises(ValueError):
        GeneratorConfig(selection_probability=1.5)
    with pytest.raises(ValueError):
        GeneratorConfig(preferred_bias=-0.1)
    with pytest.raises(ValueError):
        GeneratorConfig(max_projections_per_class=0)
    with pytest.raises(ValueError):
        GeneratorConfig(endpoint_projection_probability=2.0)


def test_count_must_be_positive(generator):
    with pytest.raises(ValueError):
        generator.generate_workload(count=0)
