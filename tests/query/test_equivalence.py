"""Unit tests for structural and answer equivalence."""

from repro.constraints import Predicate
from repro.query import Query, answers_match, results_equal, structurally_equal


def test_structural_equality_ignores_order():
    left = Query(
        projections=("cargo.desc", "vehicle.vehicle_no"),
        selective_predicates=(
            Predicate.equals("cargo.desc", "frozen food"),
            Predicate.equals("vehicle.desc", "van"),
        ),
        relationships=("collects",),
        classes=("cargo", "vehicle"),
    )
    right = Query(
        projections=("vehicle.vehicle_no", "cargo.desc"),
        selective_predicates=(
            Predicate.equals("vehicle.desc", "van"),
            Predicate.equals("cargo.desc", "frozen food"),
        ),
        relationships=("collects",),
        classes=("vehicle", "cargo"),
    )
    assert structurally_equal(left, right)


def test_structural_inequality_on_predicates():
    base = Query(
        classes=("cargo",),
        selective_predicates=(Predicate.equals("cargo.desc", "frozen food"),),
    )
    other = base.with_selective_predicates(
        [Predicate.equals("cargo.desc", "textiles")]
    )
    assert not structurally_equal(base, other)


def test_results_equal_is_set_based():
    rows_a = [{"cargo.desc": "frozen food"}, {"cargo.desc": "frozen food"}]
    rows_b = [{"cargo.desc": "frozen food"}]
    assert results_equal(rows_a, rows_b, ["cargo.desc"])
    assert not results_equal(rows_a, [{"cargo.desc": "textiles"}], ["cargo.desc"])


def test_answers_match_on_generated_database(small_setup):
    query = small_setup.queries[0]
    assert answers_match(small_setup.schema, small_setup.store, query, query)
