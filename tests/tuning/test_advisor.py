"""Unit tests for the workload-driven index advisor."""

import pytest

from repro.query import parse_query
from repro.tuning import IndexAction, IndexAdvisor


def _query(n=0):
    return parse_query(
        "(SELECT {cargo.code} { } {cargo.quantity = 110} { } {cargo})",
        name=f"hot-{n}",
    )


def _mixed_query():
    return parse_query(
        '(SELECT {cargo.desc} { } '
        '{cargo.category = "general", vehicle.desc = "van"} '
        "{collects} {cargo, vehicle})",
        name="mixed",
    )


def test_hot_attribute_earns_a_create_action():
    advisor = IndexAdvisor(create_threshold=16.0, decay_interval=1000)
    for i in range(20):
        advisor.observe(_query(i))
    assert advisor.heat("cargo", "quantity") == 20.0
    actions = advisor.advise(
        is_indexed=lambda c, a: False,
        cardinality=lambda c: 1000,
        indexable=lambda c, a: True,
    )
    assert actions == [IndexAction("create", "cargo", "quantity", 20.0)]


def test_guards_suppress_advice():
    advisor = IndexAdvisor(create_threshold=4.0, decay_interval=1000)
    for i in range(8):
        advisor.observe(_query(i))
    hot = dict(
        cardinality=lambda c: 1000, indexable=lambda c, a: True
    )
    # Already indexed: nothing to do.
    assert advisor.advise(is_indexed=lambda c, a: True, **hot) == []
    # Tiny extent: a scan is cheaper than index maintenance.
    assert (
        advisor.advise(
            is_indexed=lambda c, a: False,
            cardinality=lambda c: 10,
            indexable=lambda c, a: True,
        )
        == []
    )
    # Structurally un-indexable (pointer, unknown attribute).
    assert (
        advisor.advise(
            is_indexed=lambda c, a: False,
            cardinality=lambda c: 1000,
            indexable=lambda c, a: False,
        )
        == []
    )


def test_decay_ages_out_cold_attributes():
    advisor = IndexAdvisor(decay_interval=4)
    advisor.observe(_mixed_query())
    assert advisor.heat("cargo", "category") == 1.0
    for i in range(15):
        advisor.observe(_query(i))  # only quantity stays hot
    assert advisor.heat("cargo", "quantity") > 0.0
    # Four halvings pull the one-hit counter under the prune floor.
    assert advisor.heat("cargo", "category") == 0.0


def test_only_advisor_created_indexes_are_dropped():
    advisor = IndexAdvisor(
        create_threshold=4.0, drop_threshold=2.0, decay_interval=8
    )
    for i in range(8):
        advisor.observe(_query(i))
    assert advisor.heat("cargo", "quantity") == 4.0  # 8 hits, one halving
    (create,) = advisor.advise(
        is_indexed=lambda c, a: False,
        cardinality=lambda c: 1000,
        indexable=lambda c, a: True,
    )
    advisor.applied(create)
    assert advisor.created == {("cargo", "quantity")}

    # The workload moves on: decay pulls the heat under drop_threshold.
    for _ in range(8):
        advisor.observe(_mixed_query())
    assert advisor.heat("cargo", "quantity") <= 2.0
    actions = advisor.advise(
        is_indexed=lambda c, a: (c, a) == ("cargo", "quantity"),
        cardinality=lambda c: 1000,
        indexable=lambda c, a: True,
    )
    assert [a.op for a in actions if a.attribute_name == "quantity"] == ["drop"]

    # A schema-declared index at the same heat is never touched: advise
    # against an advisor that did not create it.
    fresh = IndexAdvisor(create_threshold=4.0, drop_threshold=2.0)
    fresh.observe(_query(0))
    assert (
        fresh.advise(
            is_indexed=lambda c, a: True,
            cardinality=lambda c: 1000,
            indexable=lambda c, a: True,
        )
        == []
    )


def test_applied_drop_clears_bookkeeping():
    advisor = IndexAdvisor()
    advisor.applied(IndexAction("create", "cargo", "quantity", 20.0))
    advisor.applied(IndexAction("drop", "cargo", "quantity", 1.0))
    assert advisor.created == set()
    assert advisor.creates == 1 and advisor.drops == 1
    assert advisor.heat("cargo", "quantity") == 0.0


def test_hysteresis_is_enforced():
    with pytest.raises(ValueError):
        IndexAdvisor(create_threshold=2.0, drop_threshold=2.0)


def test_snapshot_reports_hottest():
    advisor = IndexAdvisor()
    for i in range(3):
        advisor.observe(_query(i))
    snapshot = advisor.snapshot()
    assert snapshot["observations"] == 3
    assert snapshot["hottest"][0] == {
        "attribute": "cargo.quantity",
        "heat": 3.0,
    }
