"""Calibration convergence on the differential-oracle workload.

The calibrator's promise: fed real execution counters with wall times,
the fitted weights price queries *at least as faithfully* as the
hand-picked defaults.  This harness replays the 500-query seeded
workload the differential oracle uses, on each engine leg, with wall
times synthesized from a known ground-truth cost vector (real metrics,
noiseless clock — so the test is deterministic and the recovered
weights can be checked against the truth).  The gate compares pairwise
ranking accuracy: over sampled query pairs, the calibrated cost model
must order executions by their true cost at least as often as the
hand-weight model does.
"""

import itertools
import os

import pytest

from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.engine import ParallelExecutor, QueryExecutor, VectorizedExecutor
from repro.engine.cost_model import CostModel, CostWeights
from repro.tuning import CostCalibrator

WORKLOAD_QUERIES = int(os.environ.get("REPRO_ORACLE_QUERIES", "500"))
WORKLOAD_SEED = 20260808

#: Ground-truth per-operation seconds (I/O-heavy, era-appropriate shape).
TRUTH = {
    "instances_retrieved": 4e-6,
    "predicate_evaluations": 6e-8,
    "pointer_traversals": 9e-7,
    "index_lookups": 3e-7,
    "rows_output": 2e-7,
}


def _true_seconds(metrics):
    return sum(TRUTH[name] * getattr(metrics, name) for name in TRUTH)


def _ranking_accuracy(cost_model, executions):
    """Fraction of sampled pairs ordered like their true cost.

    Pairs whose true costs sit within 2% of each other are skipped: such
    alternatives are a wash, and collinearity between the primitive
    counters makes their order noise for *any* linear weighting — hand
    weights included.
    """
    pairs = list(itertools.combinations(range(0, len(executions), 7), 2))
    agreed, counted = 0, 0
    for i, j in pairs:
        truth_i, truth_j = executions[i][1], executions[j][1]
        if abs(truth_i - truth_j) <= 0.02 * max(truth_i, truth_j):
            continue
        cost_i = cost_model.measured_cost(executions[i][0])
        cost_j = cost_model.measured_cost(executions[j][0])
        counted += 1
        if (cost_i < cost_j) == (truth_i < truth_j):
            agreed += 1
    assert counted >= 100  # the gate only means something at scale
    return agreed / counted


@pytest.fixture(scope="module")
def workload():
    return build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"],
        query_count=WORKLOAD_QUERIES,
        seed=WORKLOAD_SEED,
    )


@pytest.mark.parametrize("mode", ["rowwise", "vectorized", "parallel"])
def test_calibrated_weights_rank_at_least_as_well_as_hand_weights(
    workload, mode
):
    if mode == "rowwise":
        executor = QueryExecutor(workload.schema, workload.store)
    elif mode == "vectorized":
        executor = VectorizedExecutor(workload.schema, workload.store)
    else:
        executor = ParallelExecutor(
            workload.schema, workload.store, workers=2, min_partition_rows=1
        )
    calibrator = CostCalibrator(reservoir_size=256, seed=1)
    executions = []
    try:
        for query in workload.queries:
            result = executor.execute(query)
            wall = _true_seconds(result.metrics)
            calibrator.observe(mode, result.metrics, wall)
            executions.append((result.metrics, wall))
    finally:
        if mode == "parallel":
            executor.close()

    report = calibrator.calibrate(mode)
    assert report is not None
    assert report.sample_count == min(256, len(executions))
    assert report.r_squared > 0.99

    statistics = workload.cost_model.statistics
    hand_model = CostModel(workload.schema, statistics)
    calibrated_model = CostModel(workload.schema, statistics)
    calibrated_model.set_weights(report.weights)

    hand_accuracy = _ranking_accuracy(hand_model, executions)
    calibrated_accuracy = _ranking_accuracy(calibrated_model, executions)
    assert calibrated_accuracy >= hand_accuracy, (
        f"{mode}: calibrated weights rank {calibrated_accuracy:.3f} "
        f"vs hand {hand_accuracy:.3f}"
    )
    # With a noiseless clock the fit should essentially recover the true
    # ordering outright, not merely tie the defaults.
    assert calibrated_accuracy > 0.95


def test_calibration_is_deterministic_per_leg(workload):
    weights = []
    for _ in range(2):
        executor = QueryExecutor(workload.schema, workload.store)
        calibrator = CostCalibrator(reservoir_size=128, seed=5)
        for query in workload.queries[:200]:
            result = executor.execute(query)
            calibrator.observe(
                "rowwise", result.metrics, _true_seconds(result.metrics)
            )
        weights.append(calibrator.calibrate("rowwise").weights)
    assert weights[0] == weights[1]
    assert isinstance(weights[0], CostWeights)
