"""Unit tests for the measured-cost calibrator."""

import random

import pytest

from repro.engine.cost_model import CostWeights
from repro.engine.executor import ExecutionMetrics
from repro.tuning import CostCalibrator

#: Ground-truth per-operation seconds a synthetic workload is priced with.
TRUTH = {
    "instances_retrieved": 5e-6,
    "predicate_evaluations": 1e-7,
    "pointer_traversals": 1.5e-6,
    "index_lookups": 2.5e-7,
    "rows_output": 2.5e-7,
}


def _synthetic_samples(count, seed):
    """(metrics, wall_time) pairs whose wall time IS the weighted counters."""
    rng = random.Random(seed)
    samples = []
    for _ in range(count):
        metrics = ExecutionMetrics(
            instances_retrieved=rng.randrange(50, 5000),
            predicate_evaluations=rng.randrange(100, 20000),
            pointer_traversals=rng.randrange(0, 2000),
            index_lookups=rng.randrange(0, 500),
            rows_output=rng.randrange(1, 1000),
        )
        wall = sum(
            TRUTH[name] * getattr(metrics, name) for name in TRUTH
        )
        samples.append((metrics, wall))
    return samples


def test_recovers_ground_truth_ratios():
    calibrator = CostCalibrator(seed=7)
    for metrics, wall in _synthetic_samples(200, seed=5):
        calibrator.observe("rowwise", metrics, wall)
    report = calibrator.calibrate("rowwise")
    assert report is not None
    assert report.r_squared > 0.999
    weights = report.weights
    # Normalized contract: instance retrieval anchors at 1.0 and every
    # other weight lands on its true ratio.
    assert weights.instance_retrieval == 1.0
    truth_ratio = TRUTH["pointer_traversals"] / TRUTH["instances_retrieved"]
    assert weights.pointer_traversal == pytest.approx(truth_ratio, rel=0.05)
    truth_ratio = TRUTH["predicate_evaluations"] / TRUTH["instances_retrieved"]
    assert weights.predicate_evaluation == pytest.approx(truth_ratio, rel=0.1)


def test_identical_streams_calibrate_identically():
    runs = []
    for _ in range(2):
        calibrator = CostCalibrator(seed=3, reservoir_size=64)
        for metrics, wall in _synthetic_samples(300, seed=9):
            calibrator.observe("vectorized", metrics, wall)
        runs.append(calibrator.calibrate("vectorized").weights)
    assert runs[0] == runs[1]


def test_refuses_underdetermined_fits():
    calibrator = CostCalibrator(min_samples=24)
    for metrics, wall in _synthetic_samples(23, seed=1):
        calibrator.observe("rowwise", metrics, wall)
    assert not calibrator.ready("rowwise")
    assert calibrator.calibrate("rowwise") is None
    calibrator.observe(
        "rowwise", ExecutionMetrics(instances_retrieved=10), 1e-4
    )
    assert calibrator.ready("rowwise")
    assert calibrator.calibrate("rowwise") is not None


def test_reservoir_stays_bounded_and_counts_everything():
    calibrator = CostCalibrator(reservoir_size=32, seed=0)
    for metrics, wall in _synthetic_samples(500, seed=2):
        calibrator.observe("parallel", metrics, wall)
    assert calibrator.sample_count("parallel") == 32
    assert calibrator.observed_count("parallel") == 500
    snapshot = calibrator.snapshot()
    assert snapshot["modes"]["parallel"] == {"retained": 32, "observed": 500}


def test_negative_samples_and_modes_are_isolated():
    calibrator = CostCalibrator()
    calibrator.observe("rowwise", ExecutionMetrics(instances_retrieved=5), -1.0)
    assert calibrator.sample_count("rowwise") == 0  # clock skew discarded
    calibrator.observe("rowwise", ExecutionMetrics(instances_retrieved=5), 1e-5)
    assert calibrator.sample_count("vectorized") == 0


def test_untouched_weight_fields_come_from_base():
    calibrator = CostCalibrator(seed=4)
    for metrics, wall in _synthetic_samples(100, seed=11):
        calibrator.observe("rowwise", metrics, wall)
    base = CostWeights(predicate_compilation=0.123)
    report = calibrator.calibrate("rowwise", base=base)
    assert report.weights.predicate_compilation == 0.123
