"""Unit tests for TuningConfig parsing and the SelfTuningManager loop."""

import pytest

from repro.engine.cost_model import CostWeights
from repro.engine.executor import ExecutionMetrics
from repro.query import parse_query
from repro.tuning import SelfTuningManager, TuningConfig


def _query():
    return parse_query(
        "(SELECT {cargo.code} { } {cargo.quantity = 110} { } {cargo})",
        name="tuning-unit",
    )


# ----------------------------------------------------------------------
# REPRO_TUNING parsing
# ----------------------------------------------------------------------
def test_from_env_full_and_off_forms():
    for text in ("1", "on", "true", "yes", "all"):
        config = TuningConfig.from_env(text)
        assert config is not None and config.enabled
        assert config.calibrate and config.auto_index and config.learn_rules
    for text in (None, "", "0", "off", "false", "no", "none", "  "):
        assert TuningConfig.from_env(text) is None


def test_from_env_component_subsets():
    config = TuningConfig.from_env("calibrate,rules")
    assert config.calibrate and config.learn_rules and not config.auto_index
    config = TuningConfig.from_env(" index ")
    assert config.auto_index and not config.calibrate and not config.learn_rules


def test_from_env_rejects_unknown_components():
    with pytest.raises(ValueError, match="unknown component"):
        TuningConfig.from_env("calibrate,turbo")


# ----------------------------------------------------------------------
# Cadence and generation discipline
# ----------------------------------------------------------------------
def test_calibration_cadence_is_counter_based():
    manager = SelfTuningManager(
        TuningConfig(calibrate_interval=8, min_samples=4)
    )
    metrics = ExecutionMetrics(instances_retrieved=100, rows_output=10)
    query = _query()
    for i in range(1, 17):
        manager.observe_execution("rowwise", query, metrics, 1e-4)
        due = manager.due_calibration("rowwise")
        assert due is (i % 8 == 0)  # deterministic, no wall clock involved
    assert manager.due_advice() is False or True  # interval-driven below


def test_calibrate_swaps_weights_and_bumps_generation():
    manager = SelfTuningManager(TuningConfig(min_samples=4))
    query = _query()
    for i in range(24):
        metrics = ExecutionMetrics(
            instances_retrieved=50 + 13 * i,
            predicate_evaluations=10 * i,
            rows_output=5 + i,
        )
        wall = 5e-6 * metrics.instances_retrieved + 2.5e-7 * metrics.rows_output
        manager.observe_execution("rowwise", query, metrics, wall)
    generation = manager.generation
    report = manager.calibrate("rowwise", CostWeights())
    assert report is not None
    assert manager.generation == generation + 1
    assert manager.weight_swaps == 1
    assert manager.last_calibration is report
    # A mode with no samples refuses to fit and leaves the generation be.
    assert manager.calibrate("parallel", CostWeights()) is None
    assert manager.generation == generation + 1


def test_ab_sampling_is_one_in_n():
    manager = SelfTuningManager(TuningConfig(ab_interval=4))
    picks = [manager.should_sample_ab() for _ in range(12)]
    assert picks == [True, False, False, False] * 3


def test_ab_sampling_disabled_without_learn_rules():
    manager = SelfTuningManager(TuningConfig(learn_rules=False))
    assert not any(manager.should_sample_ab() for _ in range(10))


def test_observe_ab_bumps_generation_on_demotion_change():
    manager = SelfTuningManager(
        TuningConfig(min_trials=2, demote_threshold=0.5)
    )
    generation = manager.generation
    assert manager.observe_ab([("c1", (1,))], 10.0, 5.0) is False
    assert manager.generation == generation
    assert manager.observe_ab([("c1", (1,))], 10.0, 5.0) is True
    assert manager.generation == generation + 1
    assert manager.is_demoted("c1")


def test_index_applied_bumps_generation():
    from repro.tuning import IndexAction

    manager = SelfTuningManager(TuningConfig())
    generation = manager.generation
    manager.index_applied(IndexAction("create", "cargo", "quantity", 20.0))
    assert manager.generation == generation + 1


def test_snapshot_shape():
    manager = SelfTuningManager(TuningConfig(auto_index=False))
    manager.observe_execution(
        "rowwise", _query(), ExecutionMetrics(instances_retrieved=1), 1e-6
    )
    snapshot = manager.snapshot()
    assert snapshot["enabled"] == {
        "calibrate": True,
        "index": False,
        "rules": True,
    }
    assert snapshot["executions_observed"] == 1
    assert set(snapshot) >= {"generation", "calibrator", "advisor", "rules"}
