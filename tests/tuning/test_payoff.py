"""Unit tests for learned rule profitability (the payoff tracker)."""

from repro.tuning import RulePayoffTracker


def test_losing_rule_is_demoted_after_min_trials():
    tracker = RulePayoffTracker(min_trials=5, demote_threshold=0.25)
    generations = (3, 7)
    for i in range(4):
        changed = tracker.observe([("c1", generations)], won=False)
        assert not changed  # evidence still below min_trials
        assert not tracker.is_demoted("c1")
    assert tracker.observe([("c1", generations)], won=False) is True
    assert tracker.is_demoted("c1")
    assert tracker.demoted() == ["c1"]
    assert tracker.demotions == 1


def test_winning_rule_is_never_demoted():
    tracker = RulePayoffTracker(min_trials=3, demote_threshold=0.25)
    for _ in range(10):
        tracker.observe([("c2", (1,))], won=True, cost_ratio=4.0)
    assert not tracker.is_demoted("c2")
    record = tracker.record("c2")
    assert record.win_rate == 1.0
    assert record.weighted_wins == 40.0


def test_generation_move_resets_evidence_and_reinstates():
    tracker = RulePayoffTracker(min_trials=3, demote_threshold=0.5)
    for _ in range(3):
        tracker.observe([("c3", (1, 1))], won=False)
    assert tracker.is_demoted("c3")

    # The referenced classes' data changed: old evidence is void and the
    # demotion lifts — the rule gets a fresh hearing.
    changed = tracker.observe([("c3", (1, 2))], won=True)
    assert changed
    assert not tracker.is_demoted("c3")
    assert tracker.reinstatements == 1
    record = tracker.record("c3")
    assert record.trials == 1 and record.wins == 1


def test_recovery_reinstates_without_generation_move():
    tracker = RulePayoffTracker(min_trials=2, demote_threshold=0.5)
    tracker.observe([("c4", (1,))], won=False)
    tracker.observe([("c4", (1,))], won=False)
    assert tracker.is_demoted("c4")
    # Wins pull the rate back over the threshold: demotion lifts in place.
    for _ in range(3):
        tracker.observe([("c4", (1,))], won=True)
    assert not tracker.is_demoted("c4")


def test_rules_are_scored_independently():
    tracker = RulePayoffTracker(min_trials=2, demote_threshold=0.5)
    for _ in range(4):
        tracker.observe([("loser", (1,)), ("winner", (2,))], won=False)
        tracker.observe([("winner", (2,))], won=True)
        tracker.observe([("winner", (2,))], won=True)
    assert tracker.is_demoted("loser")
    assert not tracker.is_demoted("winner")
    snapshot = tracker.snapshot()
    assert snapshot["demoted"] == ["loser"]
    assert snapshot["rules"]["winner"]["win_rate"] > 0.6
