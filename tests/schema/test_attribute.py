"""Unit tests for attribute definitions."""

import pytest

from repro.schema import (
    Attribute,
    AttributeKind,
    DomainType,
    pointer_attribute,
    value_attribute,
)


def test_value_attribute_defaults():
    attribute = value_attribute("desc")
    assert attribute.domain is DomainType.STRING
    assert not attribute.is_pointer
    assert not attribute.indexed
    assert attribute.target_class is None


def test_pointer_attribute_requires_target():
    attribute = pointer_attribute("collects", target_class="vehicle")
    assert attribute.is_pointer
    assert attribute.target_class == "vehicle"
    with pytest.raises(ValueError):
        Attribute(name="broken", kind=AttributeKind.POINTER)


def test_value_attribute_rejects_target_class():
    with pytest.raises(ValueError):
        Attribute(name="broken", kind=AttributeKind.VALUE, target_class="vehicle")


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        value_attribute("")


def test_with_index_returns_new_attribute():
    attribute = value_attribute("desc")
    indexed = attribute.with_index()
    assert indexed.indexed and not attribute.indexed
    assert indexed.name == attribute.name


def test_renamed_preserves_everything_else():
    attribute = value_attribute("desc", DomainType.INTEGER, indexed=True)
    renamed = attribute.renamed("quantity")
    assert renamed.name == "quantity"
    assert renamed.domain is DomainType.INTEGER
    assert renamed.indexed


def test_numeric_domains():
    assert DomainType.INTEGER.is_numeric
    assert DomainType.FLOAT.is_numeric
    assert not DomainType.STRING.is_numeric
    assert not DomainType.OID.is_numeric
