"""Unit tests for object classes."""

import pytest

from repro.schema import ObjectClass, SchemaError, pointer_attribute, value_attribute


def make_class():
    return ObjectClass(
        name="cargo",
        attributes=(
            value_attribute("code", indexed=True),
            value_attribute("desc"),
            pointer_attribute("collects", target_class="vehicle"),
        ),
    )


def test_attribute_lookup():
    cls = make_class()
    assert cls.has_attribute("code")
    assert cls.attribute("desc").name == "desc"
    assert cls.attribute_names() == ["code", "desc", "collects"]


def test_missing_attribute_raises():
    cls = make_class()
    with pytest.raises(SchemaError):
        cls.attribute("quantity")
    assert not cls.has_attribute("quantity")


def test_duplicate_attribute_rejected():
    with pytest.raises(SchemaError):
        ObjectClass(
            name="broken",
            attributes=(value_attribute("a"), value_attribute("a")),
        )


def test_attribute_partitions():
    cls = make_class()
    assert [a.name for a in cls.value_attributes] == ["code", "desc"]
    assert [a.name for a in cls.pointer_attributes] == ["collects"]
    assert [a.name for a in cls.indexed_attributes] == ["code"]


def test_with_attributes_does_not_override():
    cls = make_class()
    merged = cls.with_attributes([value_attribute("desc"), value_attribute("extra")])
    assert merged.attribute_names() == ["code", "desc", "collects", "extra"]


def test_qualified_name():
    cls = make_class()
    assert cls.qualified("code") == "cargo.code"
    with pytest.raises(SchemaError):
        cls.qualified("missing")


def test_empty_name_rejected():
    with pytest.raises(SchemaError):
        ObjectClass(name="", attributes=())
