"""Unit tests for access-frequency statistics."""

import pytest

from repro.schema import AccessStatistics


def test_record_query_counts_each_class_once():
    stats = AccessStatistics()
    stats.record_query(["cargo", "vehicle", "cargo"])
    assert stats.frequency("cargo") == 1
    assert stats.frequency("vehicle") == 1
    assert stats.queries_seen == 1


def test_least_and_most_frequent():
    stats = AccessStatistics({"cargo": 10, "supplier": 2, "vehicle": 5})
    assert stats.least_frequent(["cargo", "supplier", "vehicle"]) == "supplier"
    assert stats.most_frequent(["cargo", "supplier", "vehicle"]) == "cargo"


def test_least_frequent_breaks_ties_alphabetically():
    stats = AccessStatistics()
    assert stats.least_frequent(["vehicle", "cargo"]) == "cargo"


def test_least_frequent_requires_classes():
    with pytest.raises(ValueError):
        AccessStatistics().least_frequent([])


def test_negative_counts_rejected():
    with pytest.raises(ValueError):
        AccessStatistics({"cargo": -1})
    with pytest.raises(ValueError):
        AccessStatistics().record_access("cargo", -2)


def test_ranked_ordering():
    stats = AccessStatistics({"a": 1, "b": 3, "c": 2})
    assert stats.ranked() == ["b", "c", "a"]


def test_merge_combines_counts():
    left = AccessStatistics({"a": 1})
    right = AccessStatistics({"a": 2, "b": 1})
    merged = left.merge(right)
    assert merged.frequency("a") == 3
    assert merged.frequency("b") == 1
    # Originals untouched.
    assert left.frequency("a") == 1
