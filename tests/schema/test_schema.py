"""Unit tests for the schema container (Figure 2.1 example)."""

import pytest

from repro.schema import (
    ObjectClass,
    Relationship,
    Schema,
    SchemaError,
    build_core_example_schema,
    value_attribute,
)


def test_example_schema_classes(example_schema):
    expected = {
        "supplier",
        "cargo",
        "vehicle",
        "engine",
        "employee",
        "manager",
        "driver",
        "supervisor",
        "department",
    }
    assert set(example_schema.class_names()) == expected


def test_example_schema_relationships(example_schema):
    assert set(example_schema.relationship_names()) == {
        "supplies",
        "collects",
        "engComp",
        "drives",
        "belongsTo",
    }


def test_inheritance_resolution(example_schema):
    driver = example_schema.object_class("driver")
    # Inherited from employee.
    assert driver.has_attribute("clearance")
    assert driver.has_attribute("rank")
    # Own attributes.
    assert driver.has_attribute("licenseClass")
    supervisor = example_schema.object_class("supervisor")
    assert supervisor.has_attribute("license_no")
    assert supervisor.has_attribute("name")


def test_subclasses_of(example_schema):
    assert example_schema.subclasses_of("employee") == [
        "driver",
        "manager",
        "supervisor",
    ]


def test_resolve_qualified_names(example_schema):
    ref = example_schema.resolve("cargo.desc")
    assert ref.class_name == "cargo"
    assert ref.attribute.name == "desc"
    with pytest.raises(SchemaError):
        example_schema.resolve("cargo.nope")
    with pytest.raises(SchemaError):
        example_schema.resolve("nodots")


def test_is_indexed(example_schema):
    assert example_schema.is_indexed("cargo", "desc")
    assert not example_schema.is_indexed("cargo", "quantity")


def test_relationship_lookups(example_schema):
    rel = example_schema.relationship_between("cargo", "vehicle")
    assert rel is not None and rel.name == "collects"
    assert example_schema.relationship_between("cargo", "engine") is None
    assert "vehicle" in example_schema.neighbours("cargo")


def test_unknown_class_raises(example_schema):
    with pytest.raises(SchemaError):
        example_schema.object_class("warehouse")


def test_relationship_requires_pointer_attributes():
    left = ObjectClass("a", (value_attribute("x"),))
    right = ObjectClass("b", (value_attribute("y"),))
    with pytest.raises(SchemaError):
        Schema([left, right], [Relationship("r", "a", "b", "x", "y")])


def test_duplicate_class_rejected():
    cls = ObjectClass("a", (value_attribute("x"),))
    with pytest.raises(SchemaError):
        Schema([cls, cls])


def test_inheritance_from_unknown_parent_rejected():
    orphan = ObjectClass("child", (), parent="ghost")
    with pytest.raises(SchemaError):
        Schema([orphan])


def test_core_schema_is_connected():
    core = build_core_example_schema()
    assert len(core.class_names()) == 5
    adjacency = core.adjacency()
    assert all(neighbours for neighbours in adjacency.values())


def test_adjacency_symmetry(example_schema):
    adjacency = example_schema.adjacency()
    for class_name, entries in adjacency.items():
        for rel_name, other in entries:
            assert (rel_name, class_name) in adjacency[other]
