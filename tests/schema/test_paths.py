"""Unit tests for schema path enumeration."""

import pytest

from repro.schema import SchemaPath, enumerate_paths, longest_paths, paths_through
from repro.data import build_evaluation_schema


def test_paths_have_matching_lengths():
    with pytest.raises(ValueError):
        SchemaPath(("a", "b"), ())
    path = SchemaPath(("a", "b"), ("r",))
    assert path.length == 2
    assert path.start == "a" and path.end == "b"


def test_single_class_paths_included(example_schema):
    paths = enumerate_paths(example_schema, min_length=1, max_length=1)
    assert {p.classes[0] for p in paths} == set(example_schema.class_names())


def test_no_repeated_classes_or_relationships(example_schema):
    for path in enumerate_paths(example_schema):
        assert len(set(path.classes)) == len(path.classes)
        assert len(set(path.relationships)) == len(path.relationships)


def test_paths_are_connected(example_schema):
    for path in enumerate_paths(example_schema, min_length=2):
        for left, rel_name, right in zip(
            path.classes, path.relationships, path.classes[1:]
        ):
            relationship = example_schema.relationship(rel_name)
            assert relationship.connects(left, right)


def test_deduplication_removes_reverses(example_schema):
    deduplicated = enumerate_paths(example_schema, min_length=2)
    all_paths = enumerate_paths(example_schema, min_length=2, deduplicate=False)
    assert len(all_paths) == 2 * len(deduplicated)


def test_reversed_and_canonical():
    path = SchemaPath(("b", "a"), ("r",))
    assert path.reversed().classes == ("a", "b")
    assert path.canonical().classes == ("a", "b")


def test_evaluation_schema_has_enough_paths_for_workload():
    # 33 distinct (deduplicated) paths; the 40-query workload re-uses path
    # shapes with fresh predicates, as the paper's small schema must too.
    schema = build_evaluation_schema()
    paths = enumerate_paths(schema)
    assert len(paths) >= 30
    assert len(enumerate_paths(schema, deduplicate=False)) >= 40


def test_paths_through_and_longest(example_schema):
    paths = enumerate_paths(example_schema, min_length=2)
    through_cargo = paths_through(paths, "cargo")
    assert through_cargo and all("cargo" in p.classes for p in through_cargo)
    longest = longest_paths(paths)
    assert longest and len({p.length for p in longest}) == 1
    assert longest_paths([]) == []


def test_max_length_respected(example_schema):
    paths = enumerate_paths(example_schema, max_length=3)
    assert all(p.length <= 3 for p in paths)
    with pytest.raises(ValueError):
        enumerate_paths(example_schema, min_length=3, max_length=2)
