"""Tests for the shared thread-safe LRU cache."""

from concurrent.futures import ThreadPoolExecutor

from repro.caching import LruCache


def test_hit_miss_and_eviction_accounting():
    cache = LruCache(2)
    assert cache.get("a") is None
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # "a" is now most recently used
    cache.put("c", 3)  # evicts "b"
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.hits == 3
    assert cache.misses == 2
    assert cache.evictions == 1
    assert len(cache) == 2


def test_zero_maxsize_disables_without_counting():
    cache = LruCache(0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert cache.hits == 0
    assert cache.misses == 0
    assert len(cache) == 0


def test_clear_keeps_counters():
    cache = LruCache(4)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1
    assert cache.get("a") is None


def test_concurrent_use_is_consistent():
    cache = LruCache(128)

    def worker(offset):
        for i in range(100):
            cache.put((offset, i), i)
            cache.get((offset, i))

    with ThreadPoolExecutor(max_workers=4) as pool:
        list(pool.map(worker, range(4)))
    assert cache.hits + cache.misses == 400
    assert len(cache) <= 128
