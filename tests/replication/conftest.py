"""Shared harness for the replication suite.

Replication tests run real asyncio event loops via ``asyncio.run``
inside synchronous test functions (the suite has no async test plugin),
with the primary and every replica living in the same process but
talking over real localhost TCP — the feed, acks and router traffic all
cross actual sockets.  Each test builds its own stores and services so
mutations never leak between tests.
"""

import asyncio
import time

import pytest

from repro.constraints import ConstraintRepository
from repro.data import build_evaluation_constraints, build_evaluation_schema
from repro.durability import SinkTee
from repro.engine.storage import ShardedObjectStore
from repro.replication import ReplicaFollower, ReplicationFeed
from repro.service import OptimizationService


@pytest.fixture(scope="module")
def schema():
    return build_evaluation_schema()


def seed_store(schema, shard_count=3, cargo_rows=6, **store_kwargs):
    """A private store with a vehicle and a few cargo rows."""
    store = ShardedObjectStore(schema, shard_count=shard_count, **store_kwargs)
    store.insert(
        "vehicle",
        {"vehicle_no": "V0", "desc": "refrigerated truck", "class": 2,
         "capacity": 4000},
    )
    for i in range(cargo_rows):
        store.insert(
            "cargo",
            {"code": f"C{i}", "desc": "frozen food", "quantity": 100 + i,
             "category": "general", "collects": 1},
        )
    return store


def build_service(schema, store):
    """A fresh service (own constraint repository) over ``store``."""
    repository = ConstraintRepository(schema)
    repository.add_all(build_evaluation_constraints())
    return OptimizationService(schema, repository=repository, store=store)


def fingerprint(store):
    """Everything replication promises to reproduce, byte for byte."""
    return (
        list(store.snapshot_rows()),
        store.shard_versions(),
        dict(store.snapshot_header()),
    )


class ReplicationHarness:
    """One primary (service + feed + teed sink) plus N followers."""

    def __init__(self, schema, *, shard_count=3, journal_limit=None,
                 queue_limit=10_000, cargo_rows=6):
        store_kwargs = {}
        if journal_limit is not None:
            store_kwargs["journal_limit"] = journal_limit
        self.schema = schema
        self.store = seed_store(
            schema, shard_count=shard_count, cargo_rows=cargo_rows,
            **store_kwargs,
        )
        self.service = build_service(schema, self.store)
        self.feed = ReplicationFeed(self.service, queue_limit=queue_limit)
        self.followers = []
        self.replica_services = []
        self.replica_stores = []

    async def start(self):
        host, port = await self.feed.start()
        tee = SinkTee()
        if self.store.mutation_sink is not None:
            tee.attach(self.store.mutation_sink)
        tee.attach(self.feed.sink)
        self.store.set_mutation_sink(tee)
        return host, port

    async def add_replica(self, **follower_kwargs):
        follower = ReplicaFollower(
            self.schema, self.feed.host, self.feed.port, **follower_kwargs
        )
        store = await follower.bootstrap()
        service = build_service(self.schema, store)
        follower.attach(service)
        follower.start()
        self.followers.append(follower)
        self.replica_services.append(service)
        self.replica_stores.append(store)
        return follower, service, store

    async def wait_applied(self, version=None, timeout=15.0):
        """Block until every follower has applied ``version`` (default:
        the primary's current version).  The follower may swap its store
        on a resync, so versions are read through ``applied_version``."""
        target = self.store.version if version is None else version
        deadline = time.monotonic() + timeout
        while any(f.applied_version < target for f in self.followers):
            if time.monotonic() > deadline:
                states = [f.status() for f in self.followers]
                raise AssertionError(
                    f"followers never reached v{target}: {states}"
                )
            await asyncio.sleep(0.01)

    async def wait_acked(self, version=None, count=None, timeout=15.0):
        """Block until ``count`` subscribers have acked ``version``."""
        target = self.store.version if version is None else version
        expect = len(self.followers) if count is None else count
        deadline = time.monotonic() + timeout
        while True:
            acked = [
                replica
                for replica in self.feed.status()["replicas"]
                if replica["acked_version"] >= target
            ]
            if len(acked) >= expect:
                return
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"feed never saw {expect} ack(s) of v{target}: "
                    f"{self.feed.status()}"
                )
            await asyncio.sleep(0.01)

    async def stop(self):
        for follower in self.followers:
            await follower.stop()
        await self.feed.stop()
        for service in self.replica_services:
            service.close()
        self.service.close()


@pytest.fixture()
def make_harness(schema):
    """Factory: ``make_harness(journal_limit=..., queue_limit=...)``."""
    return lambda **kwargs: ReplicationHarness(schema, **kwargs)


@pytest.fixture()
def state_fingerprint():
    """The byte-identity oracle as a fixture (conftest is not importable)."""
    return fingerprint


@pytest.fixture()
def make_store(schema):
    """Factory for a seeded private store."""
    return lambda **kwargs: seed_store(schema, **kwargs)


@pytest.fixture()
def make_service(schema):
    """Factory for a fresh service over a given store."""
    return lambda store: build_service(schema, store)
