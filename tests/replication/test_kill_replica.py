"""Kill a replica mid-stream: router failover + full resync on restart.

Boots the real CLI topology as subprocesses — a primary with
``--replicate-on`` and two ``--follow`` replicas — routes reads through
an in-process :class:`QueryRouter`, SIGKILLs one replica under traffic,
and requires (a) zero client-visible errors across the kill, and (b) a
restarted replica resyncing from the feed (snapshot + live tail) and
serving again.
"""

import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

SERVING = re.compile(r"serving DB1 on ([\d.]+):(\d+)")
FEED = re.compile(r"replication feed on ([\d.]+):(\d+)")
SYNCED = re.compile(r"replica synced from [\d.:]+: store v(\d+)")

QUERIES = [
    '(SELECT {cargo.code, cargo.quantity} { } {cargo.quantity >= 0} { } {cargo})',
    '(SELECT {cargo.code} { } {cargo.quantity >= 1} { } {cargo})',
    '(SELECT {cargo.desc} { } {cargo.quantity >= 2} { } {cargo})',
    '(SELECT {cargo.category} { } {cargo.quantity >= 3} { } {cargo})',
]


def _spawn(*extra_args):
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--db", "DB1",
         "--port", "0", *extra_args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _await_patterns(proc, *patterns, timeout=120):
    """Read the child's stdout until every pattern matched once."""
    matches = {}
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline and len(matches) < len(patterns):
        line = proc.stdout.readline()
        if not line:
            pytest.fail("server exited early:\n" + "".join(lines))
        lines.append(line)
        for pattern in patterns:
            if pattern not in matches:
                found = pattern.search(line)
                if found:
                    matches[pattern] = found
    if len(matches) < len(patterns):
        pytest.fail("server never printed its endpoints:\n" + "".join(lines))
    return [matches[pattern] for pattern in patterns]


def _await_socket(host, port, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection((host, port), 1).close()
            return
        except OSError:
            time.sleep(0.25)
    pytest.fail(f"{host}:{port} never accepted a connection")


def _terminate(proc):
    if proc is not None and proc.poll() is None:
        proc.kill()
        proc.wait(timeout=30)
    if proc is not None and proc.stdout is not None:
        proc.stdout.close()


def test_router_survives_a_replica_kill_and_restart():
    primary = replica_a = replica_b = restarted = None
    try:
        primary = _spawn("--replicate-on", "0")
        (serving, feed) = _await_patterns(primary, SERVING, FEED)
        primary_endpoint = f"{serving.group(1)}:{serving.group(2)}"
        feed_endpoint = (feed.group(1), int(feed.group(2)))

        follow = f"{feed_endpoint[0]}:{feed_endpoint[1]}"
        replica_a = _spawn("--follow", follow)
        replica_b = _spawn("--follow", follow)
        (serving_a,) = _await_patterns(replica_a, SERVING)
        (serving_b,) = _await_patterns(replica_b, SERVING)
        endpoint_a = f"{serving_a.group(1)}:{serving_a.group(2)}"
        endpoint_b = f"{serving_b.group(1)}:{serving_b.group(2)}"
        for endpoint in (primary_endpoint, endpoint_a, endpoint_b):
            host, _, port = endpoint.rpartition(":")
            _await_socket(host, int(port))

        import asyncio

        from repro.replication import QueryRouter
        from repro.server import AsyncGatewayClient

        async def drive(replicas, rounds=2, mutate=False):
            """Reads (and optionally one write) through a fresh router."""
            router = QueryRouter(
                primary_endpoint, list(replicas), retry_reads=1,
                pin_timeout=10.0,
            )
            host, port = await router.start()
            client = await AsyncGatewayClient.connect(host, port)
            errors = []
            try:
                if mutate:
                    await client.insert(
                        "cargo", {"desc": "killed-replica survivor",
                                  "quantity": 31337},
                    )
                for _ in range(rounds):
                    for text in QUERIES:
                        try:
                            await client.execute(text)
                        except Exception as exc:  # noqa: BLE001
                            errors.append(repr(exc))
            finally:
                await client.close()
                await router.stop()
            return errors, router.status()

        # Healthy fleet: mixed traffic, read-your-writes across the write.
        errors, _ = asyncio.run(drive([endpoint_a, endpoint_b], mutate=True))
        assert errors == []

        # SIGKILL replica A mid-stream; traffic must keep flowing.
        replica_a.send_signal(signal.SIGKILL)
        replica_a.wait(timeout=30)
        errors, status = asyncio.run(drive([endpoint_a, endpoint_b]))
        assert errors == [], f"reads failed across the kill: {errors}"
        assert status["errors"] == 0

        # A restarted replica resyncs (snapshot + tail) and serves again:
        # its bootstrap version must include the post-kill write.
        restarted = _spawn("--follow", follow)
        (synced, serving_r) = _await_patterns(restarted, SYNCED, SERVING)
        assert int(synced.group(1)) >= 1
        endpoint_r = f"{serving_r.group(1)}:{serving_r.group(2)}"
        host, _, port = endpoint_r.rpartition(":")
        _await_socket(host, int(port))
        errors, status = asyncio.run(drive([endpoint_r, endpoint_b]))
        assert errors == []
        assert status["errors"] == 0
    finally:
        for proc in (primary, replica_a, replica_b, restarted):
            _terminate(proc)
