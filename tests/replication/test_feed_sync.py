"""Feed ↔ follower sync: bootstrap, live tail, acks, and resync paths.

Pins the replication wire contract end to end over real sockets:

* a bootstrap snapshot rebuilds the primary store **byte-identically**
  (rows with attribute order, per-shard version counters, OID
  allocators);
* live mutation records apply through ``apply_journal`` and are acked,
  so the primary reports zero lag once a replica catches up;
* a dropped connection resyncs with a ``tail`` when the primary's
  journal still bridges the gap, and falls back to a full ``snapshot``
  resync when it does not (journal overflow) or when the feed epoch
  changed (restarted primary) — never a silent gap.
"""

import asyncio

from repro.replication import ReplicationFeed


def test_bootstrap_snapshot_is_byte_identical(make_harness, state_fingerprint):
    async def scenario():
        harness = make_harness()
        await harness.start()
        follower, _, replica_store = await harness.add_replica()
        try:
            assert follower.last_sync_mode == "snapshot"
            return state_fingerprint(harness.store), state_fingerprint(replica_store)
        finally:
            await harness.stop()

    primary, replica = asyncio.run(scenario())
    assert primary == replica


def test_live_tail_applies_and_acks(make_harness, state_fingerprint):
    async def scenario():
        harness = make_harness()
        await harness.start()
        follower, _, replica_store = await harness.add_replica()
        try:
            harness.service.mutate(
                "insert", "cargo",
                values={"code": "T1", "desc": "frozen food", "quantity": 7,
                        "category": "general", "collects": 1},
            )
            harness.service.mutate(
                "update", "cargo", oid=1, values={"quantity": 555}
            )
            harness.service.mutate("delete", "cargo", oid=2)
            await harness.wait_applied()
            await harness.wait_acked()
            status = harness.feed.status()
            assert status["replicas"][0]["lag"] == 0
            assert follower.records_applied == 3
            assert follower.status()["connected"]
            return state_fingerprint(harness.store), state_fingerprint(replica_store)
        finally:
            await harness.stop()

    primary, replica = asyncio.run(scenario())
    assert primary == replica


def test_reconnect_bridges_with_a_tail_sync(make_harness, state_fingerprint):
    async def scenario():
        harness = make_harness()
        await harness.start()
        follower, _, _ = await harness.add_replica()
        try:
            harness.service.mutate(
                "insert", "cargo", values={"desc": "before drop"}
            )
            await harness.wait_applied()
            # Sever the feed connection under the follower; the writes
            # issued while it is down are exactly the journal tail the
            # reconnect handshake must bridge.
            follower._writer.close()
            for i in range(5):
                harness.service.mutate(
                    "insert", "cargo", values={"desc": f"during drop {i}"}
                )
            await harness.wait_applied()
            assert follower.last_sync_mode == "tail"
            assert follower.resyncs == 0  # no snapshot was shipped
            # The follower kept its original store object across the drop.
            return (
                state_fingerprint(harness.store),
                state_fingerprint(follower._store),
            )
        finally:
            await harness.stop()

    primary, replica = asyncio.run(scenario())
    assert primary == replica


def test_journal_gap_forces_snapshot_resync(make_harness, state_fingerprint):
    # A tiny primary journal and a tiny feed queue: a burst of writes in
    # one event-loop turn overflows the subscriber (which must be
    # disconnected, never skipped ahead) and outruns the journal, so the
    # reconnect can only be satisfied by a full snapshot.
    async def scenario():
        harness = make_harness(journal_limit=4, queue_limit=3)
        await harness.start()
        follower, _, _ = await harness.add_replica()
        try:
            # Synchronous burst: the loop never yields, so the feed's
            # pump cannot drain between frames — deterministic overflow.
            for i in range(12):
                harness.service.mutate(
                    "insert", "cargo", values={"desc": f"burst {i}"}
                )
            await harness.wait_applied()
            assert follower.resyncs >= 1
            assert follower.last_sync_mode == "snapshot"
            assert harness.feed.status()["disconnects"] >= 1
            return (
                state_fingerprint(harness.store),
                state_fingerprint(follower._store),
            )
        finally:
            await harness.stop()

    primary, replica = asyncio.run(scenario())
    assert primary == replica


def test_queue_overflow_during_inflight_snapshot_sync(
    make_harness, state_fingerprint
):
    # The subscriber is registered *inside* the capture, before the
    # snapshot payload ships — so a write burst landing while the
    # snapshot is still in flight queues against a subscriber whose
    # pump has not started yet.  With a tiny queue the burst overflows
    # mid-handshake: the feed must still ship the complete snapshot,
    # then disconnect (never skip), and the follower must resync to
    # byte-identical state.
    async def scenario():
        # Thousands of snapshot rows keep the handshake in flight long
        # enough to observe; journal_limit=4 forces the post-overflow
        # reconnect onto the snapshot path.
        harness = make_harness(journal_limit=4, queue_limit=3, cargo_rows=4000)
        await harness.start()
        task = asyncio.ensure_future(harness.add_replica())
        try:
            # Registration happens inside the capture's read span, so a
            # non-empty replica list means the sync is under way.
            while not harness.feed.status()["replicas"]:
                await asyncio.sleep(0.001)
            # Synchronous burst on the loop thread: neither the
            # handshake coroutine nor a pump can drain between frames —
            # deterministic overflow, whatever phase the sync is in.
            for i in range(12):
                harness.service.mutate(
                    "insert", "cargo", values={"desc": f"mid-sync {i}"}
                )
            follower, _, _ = await task
            await harness.wait_applied()
            assert harness.feed.status()["disconnects"] >= 1
            assert follower.resyncs >= 1
            assert follower.last_sync_mode == "snapshot"
            return (
                state_fingerprint(harness.store),
                state_fingerprint(follower._store),
            )
        finally:
            await harness.stop()

    primary, replica = asyncio.run(scenario())
    assert primary == replica


def test_epoch_change_forces_snapshot_resync(make_harness, state_fingerprint):
    # A restarted primary process has a fresh feed epoch; a follower
    # carrying the old epoch must full-resync even if its version looks
    # bridgeable, because journal sequence numbers restarted with it.
    async def scenario():
        harness = make_harness()
        await harness.start()
        follower, _, _ = await harness.add_replica()
        try:
            old_port = harness.feed.port
            await harness.feed.stop()
            replacement = ReplicationFeed(harness.service, port=old_port)
            await replacement.start()
            harness.store.set_mutation_sink(replacement.sink)
            harness.feed = replacement
            harness.service.mutate(
                "insert", "cargo", values={"desc": "new epoch"}
            )
            await harness.wait_applied()
            assert follower.resyncs >= 1
            assert follower.last_sync_mode == "snapshot"
            assert follower.epoch == replacement.epoch
            return (
                state_fingerprint(harness.store),
                state_fingerprint(follower._store),
            )
        finally:
            await harness.stop()

    primary, replica = asyncio.run(scenario())
    assert primary == replica
