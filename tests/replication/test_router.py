"""The consistent-hash router: ring determinism, routing, failover.

Unit-pins the ring (stable across construction order and processes —
no ``hash()`` anywhere near routing) and then drives a real topology —
primary gateway + two read-only replica gateways + router, all over
localhost TCP — asserting reads land on replicas, writes land on the
primary, read-your-writes holds across a write, replicas reject direct
writes with the ``read_only`` wire code, and a dead replica fails over
without a client-visible error.
"""

import asyncio

import pytest

from repro.query import parse_query
from repro.query.equivalence import equivalence_key
from repro.replication import ConsistentHashRing, QueryRouter, route_key
from repro.server import AsyncGatewayClient, GatewayRequestError, QueryGateway

ENDPOINTS = ["10.0.0.1:7431", "10.0.0.2:7431", "10.0.0.3:7431"]

QUERIES = [
    '(SELECT {cargo.code, cargo.quantity} { } {cargo.quantity >= 0} { } {cargo})',
    '(SELECT {cargo.code} { } {cargo.quantity >= 100} { } {cargo})',
    '(SELECT {cargo.desc} { } {cargo.quantity >= 101} { } {cargo})',
    '(SELECT {cargo.code, vehicle.desc} { } '
    '{vehicle.desc = "refrigerated truck"} {collects} {cargo, vehicle})',
    '(SELECT {vehicle.vehicle_no} { } {vehicle.capacity >= 0} { } {vehicle})',
    '(SELECT {cargo.category} { } {cargo.quantity >= 102} { } {cargo})',
]


# ----------------------------------------------------------------------
# Ring units.
# ----------------------------------------------------------------------
def test_ring_is_deterministic_and_order_insensitive():
    ring_a = ConsistentHashRing(ENDPOINTS)
    ring_b = ConsistentHashRing(list(reversed(ENDPOINTS)))
    keys = [f"key-{i}" for i in range(300)]
    assert [ring_a.node_for(k) for k in keys] == [
        ring_b.node_for(k) for k in keys
    ]
    # Every endpoint serves a share of a large keyspace.
    assert {ring_a.node_for(k) for k in keys} == set(ENDPOINTS)


def test_nodes_for_walks_every_endpoint_once():
    ring = ConsistentHashRing(ENDPOINTS)
    walk = list(ring.nodes_for("some-key"))
    assert sorted(walk) == sorted(ENDPOINTS)
    assert len(set(walk)) == len(ENDPOINTS)


def test_single_endpoint_ring_routes_everything_to_it():
    ring = ConsistentHashRing(["only:1"])
    assert ring.node_for("a") == "only:1"
    assert list(ring.nodes_for("b")) == ["only:1"]


def test_route_key_canonicalizes_equivalent_queries():
    # Same semantics, different predicate order: one route key, so both
    # land on the same replica's warm caches.
    text_a = (
        '(SELECT {cargo.code} { } '
        '{cargo.quantity >= 5, cargo.desc = "frozen food"} { } {cargo})'
    )
    text_b = (
        '(SELECT {cargo.code} { } '
        '{cargo.desc = "frozen food", cargo.quantity >= 5} { } {cargo})'
    )
    key_a = route_key(equivalence_key(parse_query(text_a, name="a")))
    key_b = route_key(equivalence_key(parse_query(text_b, name="b")))
    assert key_a == key_b
    other = route_key(
        equivalence_key(parse_query(QUERIES[1], name="c"))
    )
    assert other != key_a


# ----------------------------------------------------------------------
# End-to-end topology.
# ----------------------------------------------------------------------
def test_router_reads_on_replicas_writes_on_primary(make_harness):
    async def scenario():
        harness = make_harness()
        await harness.start()
        f1, s1, _ = await harness.add_replica()
        f2, s2, _ = await harness.add_replica()
        primary_gw = QueryGateway(harness.service, replication=harness.feed)
        replica_gw1 = QueryGateway(s1, read_only=True, follower=f1)
        replica_gw2 = QueryGateway(s2, read_only=True, follower=f2)
        router = None
        client = None
        direct = None
        try:
            await primary_gw.start()
            await replica_gw1.start()
            await replica_gw2.start()
            router = QueryRouter(
                f"127.0.0.1:{primary_gw.port}",
                [f"127.0.0.1:{replica_gw1.port}",
                 f"127.0.0.1:{replica_gw2.port}"],
                retry_reads=1,  # fail over fast once a replica is down
            )
            host, port = await router.start()
            client = await AsyncGatewayClient.connect(host, port)

            for text in QUERIES * 2:
                payload = await client.execute(text)
                assert "rows" in payload
            # Reads never touched the primary; both replicas served some.
            replica_reads = (
                replica_gw1.stats_payload()["gateway"]["requests"].get("execute", 0),
                replica_gw2.stats_payload()["gateway"]["requests"].get("execute", 0),
            )
            primary_reads = primary_gw.stats_payload()["gateway"]["requests"].get("execute", 0)

            # A write forwards to the primary, and the very next read on
            # the same connection sees it (read-your-writes).
            inserted = await client.insert(
                "cargo",
                {"code": "RYW", "desc": "frozen food", "quantity": 424242,
                 "category": "general", "collects": 1},
            )
            assert inserted["store_version"] == harness.store.version
            after = await client.execute(
                '(SELECT {cargo.code} { } {cargo.quantity >= 424242} { } {cargo})'
            )
            codes = {row["cargo.code"] for row in after["rows"]}
            assert "RYW" in codes

            # Direct writes to a replica are rejected with the wire code.
            direct = await AsyncGatewayClient.connect(
                "127.0.0.1", replica_gw1.port
            )
            with pytest.raises(GatewayRequestError) as excinfo:
                await direct.insert("cargo", {"desc": "nope"})
            assert excinfo.value.code == "read_only"
            with pytest.raises(GatewayRequestError) as excinfo:
                await direct.remove_rule("any-rule")
            assert excinfo.value.code == "read_only"

            # Kill one replica: every read still answers via failover.
            await replica_gw2.stop()
            for text in QUERIES * 2:
                payload = await client.execute(text)
                assert "rows" in payload
            status = router.status()
            return replica_reads, primary_reads, status
        finally:
            if client is not None:
                await client.close()
            if direct is not None:
                await direct.close()
            if router is not None:
                await router.stop()
            await primary_gw.stop()
            await replica_gw1.stop()
            await replica_gw2.stop()
            await harness.stop()

    replica_reads, primary_reads, status = asyncio.run(scenario())
    assert primary_reads == 0
    assert sum(replica_reads) == len(QUERIES) * 2
    assert min(replica_reads) > 0, (
        f"consistent hashing should spread this workload: {replica_reads}"
    )
    assert status["errors"] == 0
    assert status["routed_writes"] >= 1
    # The dead replica's share of the second read wave failed over.
    assert status["failovers"] >= 1


def test_router_pin_falls_back_to_primary_when_replicas_lag(make_harness):
    # A stopped follower never applies the write; the pinned read must
    # fall back to the primary within the (short) pin timeout instead of
    # serving stale rows or erroring.
    async def scenario():
        harness = make_harness()
        await harness.start()
        f1, s1, _ = await harness.add_replica()
        primary_gw = QueryGateway(harness.service, replication=harness.feed)
        replica_gw = QueryGateway(s1, read_only=True, follower=f1)
        router = None
        client = None
        try:
            await primary_gw.start()
            await replica_gw.start()
            router = QueryRouter(
                f"127.0.0.1:{primary_gw.port}",
                [f"127.0.0.1:{replica_gw.port}"],
                pin_timeout=0.3,
                pin_poll_interval=0.02,
            )
            host, port = await router.start()
            client = await AsyncGatewayClient.connect(host, port)
            # Freeze the replica: stop the follower's live apply loop.
            await f1.stop()
            await client.insert(
                "cargo",
                {"code": "STALE", "desc": "frozen food", "quantity": 999999,
                 "category": "general", "collects": 1},
            )
            payload = await client.execute(
                '(SELECT {cargo.code} { } {cargo.quantity >= 999999} { } {cargo})'
            )
            codes = {row["cargo.code"] for row in payload["rows"]}
            assert "STALE" in codes
            return (
                router.status(),
                primary_gw.stats_payload()["gateway"]["requests"],
            )
        finally:
            if client is not None:
                await client.close()
            if router is not None:
                await router.stop()
            await primary_gw.stop()
            await replica_gw.stop()
            await harness.stop()

    status, primary_requests = asyncio.run(scenario())
    assert status["errors"] == 0
    assert status["failovers"] >= 1
    assert primary_requests.get("execute", 0) >= 1


def test_router_pin_expiry_with_dead_primary_is_a_stable_error(make_harness):
    # The worst case of read-your-writes: the pinned replica never
    # catches up (frozen follower) *and* the primary fallback is gone.
    # The pin must expire into a stable wire error within bounded
    # wall-clock — never a hang, never a stale read — and the router
    # connection must survive to answer the next request.
    import time

    READ = '(SELECT {cargo.code} { } {cargo.quantity >= 999999} { } {cargo})'

    async def scenario():
        harness = make_harness()
        await harness.start()
        f1, s1, _ = await harness.add_replica()
        primary_gw = QueryGateway(harness.service, replication=harness.feed)
        replica_gw = QueryGateway(s1, read_only=True, follower=f1)
        router = None
        client = None
        try:
            await primary_gw.start()
            await replica_gw.start()
            router = QueryRouter(
                f"127.0.0.1:{primary_gw.port}",
                [f"127.0.0.1:{replica_gw.port}"],
                pin_timeout=0.3,
                pin_poll_interval=0.02,
                retry_reads=1,  # keep the doomed primary retry bounded
            )
            host, port = await router.start()
            client = await AsyncGatewayClient.connect(host, port)
            # Freeze the replica (its gateway still answers
            # replica_status, so the pin poll runs its full course),
            # pin the connection with a write, then kill the primary.
            await f1.stop()
            await client.insert(
                "cargo",
                {"code": "DOOM", "desc": "frozen food", "quantity": 999999,
                 "category": "general", "collects": 1},
            )
            await primary_gw.stop()
            started = time.monotonic()
            codes = []
            for _ in range(2):  # the second read proves the session lives
                try:
                    await client.execute(READ)
                except GatewayRequestError as exc:
                    codes.append(exc.code)
            elapsed = time.monotonic() - started
            return codes, elapsed, router.status()
        finally:
            if client is not None:
                await client.close()
            if router is not None:
                await router.stop()
            await replica_gw.stop()
            await primary_gw.stop()
            await harness.stop()

    codes, elapsed, status = asyncio.run(scenario())
    # Both reads answered (no hang) with the stable backend-failure code.
    assert codes == ["internal", "internal"]
    assert elapsed < 5.0
    assert status["errors"] == 2
    assert status["stalls"] >= 1
    assert status["failovers"] >= 1
