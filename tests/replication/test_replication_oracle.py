"""Replication oracle: seeded schedules converge byte-identically.

Drives seeded random mutation schedules (insert / update / delete,
single rows and batches) through the primary while two replicas tail
the feed, then asserts the replicated promise exactly: every replica's
rows (including attribute order), per-shard version counters and OID
allocators match the primary byte for byte, and a query answered by a
replica returns the same rows as the primary.  Runs under whatever
``REPRO_ENGINE`` leg CI selected, so all three engines are covered
across the matrix.
"""

import asyncio
import json
import random

from repro.query import parse_query

SEEDS = (101, 202, 303)
STEPS = 40

QUERY = parse_query(
    '(SELECT {cargo.code, cargo.quantity} { } {cargo.quantity >= 0} { } {cargo})',
    name="oracle_probe",
)


def _apply_schedule(service, rng, steps):
    """Seeded ops against ``service``; deletes/updates target live OIDs."""
    live = [1, 2, 3, 4, 5, 6]  # the harness seeds six cargo rows
    counter = 0
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.45 or not live:
            counter += 1
            result = service.mutate(
                "insert", "cargo",
                values={"code": f"S{counter}", "desc": "frozen food",
                        "quantity": rng.randrange(1000),
                        "category": "general", "collects": 1},
            )
            live.extend(result.oids)
        elif roll < 0.65:
            counter += 1
            rows = [
                {"code": f"B{counter}-{i}", "desc": "frozen food",
                 "quantity": rng.randrange(1000), "category": "general",
                 "collects": 1}
                for i in range(rng.randrange(2, 5))
            ]
            result = service.mutate("insert_many", "cargo", rows=rows)
            live.extend(result.oids)
        elif roll < 0.85:
            service.mutate(
                "update", "cargo", oid=rng.choice(live),
                values={"quantity": rng.randrange(1000)},
            )
        else:
            oid = live.pop(rng.randrange(len(live)))
            service.mutate("delete", "cargo", oid=oid)


def test_seeded_schedules_converge_byte_identical(
    make_harness, state_fingerprint
):
    async def scenario(seed):
        harness = make_harness()
        await harness.start()
        await harness.add_replica()
        await harness.add_replica()
        try:
            _apply_schedule(harness.service, random.Random(seed), STEPS)
            await harness.wait_applied()
            await harness.wait_acked()
            primary = state_fingerprint(harness.store)
            replicas = [
                state_fingerprint(store) for store in harness.replica_stores
            ]
            direct = harness.service.execute(QUERY, use_cache=False)
            answers = [
                service.execute(QUERY, use_cache=False)
                for service in harness.replica_services
            ]
            return primary, replicas, direct, answers
        finally:
            await harness.stop()

    for seed in SEEDS:
        primary, replicas, direct, answers = asyncio.run(scenario(seed))
        for index, replica in enumerate(replicas):
            assert replica == primary, (
                f"replica {index} diverged from the primary (seed {seed})"
            )
        expected = json.dumps(direct.execution.rows, sort_keys=True)
        for index, answer in enumerate(answers):
            got = json.dumps(answer.execution.rows, sort_keys=True)
            assert got == expected, (
                f"replica {index} answered differently (seed {seed})"
            )
