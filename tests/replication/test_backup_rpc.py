"""The ``backup`` RPC: on-demand snapshots with a stable error code.

With a durability manager attached, ``backup`` writes a point-in-time
snapshot through the normal snapshot path (store write lock held, tmp +
fsync + rename) and reports its path and version; the snapshot must
load back byte-identically.  Without ``--data-dir`` the op answers the
``backup_unavailable`` wire code — never a generic internal error.
"""

import asyncio
from pathlib import Path

import pytest

from repro.durability import DurabilityManager
from repro.durability.snapshot import load_snapshot
from repro.engine.storage import ShardedObjectStore
from repro.server import AsyncGatewayClient, QueryGateway, GatewayRequestError


def test_backup_writes_a_loadable_snapshot(tmp_path, schema, make_service):
    manager = DurabilityManager(str(tmp_path), fsync_policy="off")
    store, _ = manager.open(ShardedObjectStore(schema, shard_count=2))
    service = make_service(store)
    service.attach_durability(manager)
    try:
        for i in range(5):
            service.mutate(
                "insert", "cargo",
                values={"code": f"BK{i}", "desc": "frozen food",
                        "quantity": i, "category": "general"},
            )

        async def scenario():
            gateway = QueryGateway(service)
            client = AsyncGatewayClient.in_process(gateway)
            try:
                return await client.request({"op": "backup"})
            finally:
                await gateway.stop()

        result = asyncio.run(scenario())
        assert result["version"] == store.version
        path = Path(result["path"])
        assert path.exists()
        restored = load_snapshot(str(path), schema)
        assert list(restored.snapshot_rows()) == list(store.snapshot_rows())
        assert restored.shard_versions() == store.shard_versions()
        assert dict(restored.snapshot_header()) == dict(store.snapshot_header())
    finally:
        service.close()
        manager.close()


def test_backup_without_durability_is_a_stable_error(schema, make_store,
                                                     make_service):
    service = make_service(make_store())
    try:

        async def scenario():
            gateway = QueryGateway(service)
            client = AsyncGatewayClient.in_process(gateway)
            try:
                with pytest.raises(GatewayRequestError) as excinfo:
                    await client.request({"op": "backup"})
                return excinfo.value.code
            finally:
                await gateway.stop()

        assert asyncio.run(scenario()) == "backup_unavailable"
    finally:
        service.close()
