"""Standalone child process for the kill-and-recover test.

Runs a seeded mutation schedule through a *durable* ``OptimizationService``
(WAL fsync policy ``always``, aggressive snapshotting so segment rotation
happens mid-run) and prints one ``ACK <index> <store_version>`` line per
acked mutation.  The parent test reads a seeded number of ACKs, SIGKILLs
this process at that frame, recovers the data directory and compares the
result byte for byte against an uninterrupted prefix run.

Also importable (the parent loads it via ``importlib``) for the shared
schedule builder and oracle applier, so child and parent can never drift.
"""

import random
import sys

#: Seed shared by child and parent — the schedule must be identical.
SCHEDULE_SEED = 90125

#: WAL frames per snapshot in the child: small enough that a normal run
#: crosses several snapshot + segment-rotation boundaries, so the SIGKILL
#: lands in every phase of the lifecycle across seeds.
SNAPSHOT_FRAMES = 40

QUERY_TEXT = "(SELECT {cargo.desc} { } {cargo.quantity >= 250} { } {cargo})"


def build_schedule(total, seed=SCHEDULE_SEED):
    """``total`` seeded mutation specs (insert-heavy, with update/delete).

    OIDs are precomputed: the store assigns them deterministically (1, 2,
    3, ... for a single inserted class on an empty store), so the parent
    can rebuild the exact oracle store without running the child's code.
    """
    rng = random.Random(seed)
    ops = []
    live = []
    next_oid = 1
    for index in range(total):
        choice = rng.random()
        if not live or choice < 0.6:
            ops.append(
                {
                    "op": "insert",
                    "class_name": "cargo",
                    "values": {
                        "desc": f"crash row {index}",
                        "quantity": rng.randint(1, 500),
                        "code": f"K{index:05d}",
                    },
                }
            )
            live.append(next_oid)
            next_oid += 1
        elif choice < 0.85:
            oid = live[rng.randrange(len(live))]
            ops.append(
                {
                    "op": "update",
                    "class_name": "cargo",
                    "oid": oid,
                    "values": {"quantity": rng.randint(1, 500)},
                }
            )
        else:
            oid = live.pop(rng.randrange(len(live)))
            ops.append({"op": "delete", "class_name": "cargo", "oid": oid})
    return ops


def apply_prefix(store, ops, count):
    """Apply the first ``count`` schedule ops directly to ``store``.

    The oracle path: a plain store, no service, no durability — what an
    uninterrupted run's state must equal.
    """
    for spec in ops[:count]:
        if spec["op"] == "insert":
            store.insert(spec["class_name"], dict(spec["values"]))
        elif spec["op"] == "update":
            store.update(spec["class_name"], spec["oid"], dict(spec["values"]))
        else:
            store.delete(spec["class_name"], spec["oid"])


def main(argv):
    data_dir, total = argv[1], int(argv[2])
    from repro.constraints import ConstraintRepository
    from repro.data import build_evaluation_schema
    from repro.durability import DurabilityManager
    from repro.engine.storage import ShardedObjectStore
    from repro.query import parse_query
    from repro.service import OptimizationService

    schema = build_evaluation_schema()
    repository = ConstraintRepository(schema)
    store = ShardedObjectStore(schema, shard_count=3)
    manager = DurabilityManager(
        data_dir, fsync_policy="always", snapshot_frames=SNAPSHOT_FRAMES
    )
    store, _ = manager.open(store)
    # Engine comes from REPRO_ENGINE (the CI matrix leg); interleaved
    # executes keep the read path — and under the parallel engine, the
    # fork machinery — live while frames are being appended.
    service = OptimizationService(schema, repository=repository, store=store)
    service.attach_durability(manager)
    query = parse_query(QUERY_TEXT)
    for index, spec in enumerate(build_schedule(total)):
        result = service.mutate(
            spec["op"],
            spec["class_name"],
            oid=spec.get("oid"),
            values=spec.get("values"),
        )
        print(f"ACK {index} {result.store_version}", flush=True)
        if (index + 1) % 10 == 0:
            service.execute(query)
    print("DONE", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
