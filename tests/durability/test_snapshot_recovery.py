"""Snapshot atomicity/validation and the recovery decision tree."""

import os

import pytest

from repro.data import build_evaluation_schema
from repro.durability import (
    DurabilityManager,
    SnapshotError,
    decode_frame,
    encode_frame,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    recover,
    write_snapshot,
)
from repro.durability.wal import parse_segment_name, segment_name
from repro.engine.storage import ShardedObjectStore, StorageError


@pytest.fixture()
def schema():
    return build_evaluation_schema()


def _populated(schema, shard_count=3):
    store = ShardedObjectStore(schema, shard_count=shard_count)
    for index in range(9):
        store.insert(
            "cargo",
            {"desc": f"snap row {index}", "quantity": 100 + index,
             "code": f"S{index:04d}"},
        )
    store.update("cargo", 2, {"quantity": 999})
    store.delete("cargo", 5)
    return store


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def test_snapshot_round_trip_is_exact(tmp_path, schema):
    store = _populated(schema)
    path = write_snapshot(str(tmp_path), store)
    assert os.path.basename(path) == f"snapshot-{store.version:012d}.ndjson"
    loaded = load_snapshot(path, schema)
    assert loaded.version == store.version
    assert loaded.shard_versions() == store.shard_versions()
    assert loaded.snapshot_header() == store.snapshot_header()
    assert list(loaded.snapshot_rows()) == list(store.snapshot_rows())
    # The restored journal floor is the restored version itself: exactly-
    # at-version replicas bridge with [], older ones cannot bridge at all
    # (nothing before the snapshot is journaled).
    assert loaded.journal_since(loaded.version) == []
    assert loaded.journal_since(loaded.version - 1) is None
    # OID allocation continues where the snapshotted store would have.
    assert loaded.insert("cargo", {"desc": "next"}).oid == store.insert(
        "cargo", {"desc": "next"}
    ).oid


def test_equal_stores_snapshot_byte_identically(tmp_path, schema):
    first = write_snapshot(str(tmp_path / "a"), _populated(schema))
    second = write_snapshot(str(tmp_path / "b"), _populated(schema))
    with open(first, "rb") as f, open(second, "rb") as g:
        assert f.read() == g.read()


def test_snapshot_validation_rejects_defects(tmp_path, schema):
    store = _populated(schema)
    path = write_snapshot(str(tmp_path), store)
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.split(b"\n")

    # Missing trailer: a partially written file must never half-load.
    torn = tmp_path / "torn" / os.path.basename(path)
    torn.parent.mkdir()
    torn.write_bytes(b"\n".join(lines[:-2]) + b"\n")
    with pytest.raises(SnapshotError):
        load_snapshot(str(torn), schema)

    # A flipped byte inside a row frame fails its checksum.
    flipped = tmp_path / "flipped" / os.path.basename(path)
    flipped.parent.mkdir()
    flipped.write_bytes(data.replace(b"snap row 3", b"snap row X", 1))
    with pytest.raises(SnapshotError):
        load_snapshot(str(flipped), schema)

    # File name / header version disagreement is rejected.
    renamed = tmp_path / "renamed" / "snapshot-000000000001.ndjson"
    renamed.parent.mkdir()
    renamed.write_bytes(data)
    with pytest.raises(SnapshotError):
        load_snapshot(str(renamed), schema)


def test_load_rejects_non_object_row_fields(tmp_path, schema):
    # A row frame whose 'values' (or 'class') is valid JSON but not the
    # right shape must be a SnapshotError the recovery fallback catches,
    # never a raw TypeError out of restore().
    store = _populated(schema)
    for field, bogus in (("values", "not-an-object"), ("class", ["cargo"])):
        directory = tmp_path / field
        path = write_snapshot(str(directory), store)
        with open(path, encoding="utf-8") as handle:
            frames = [decode_frame(line) for line in handle]
        row = next(f for f in frames if f.get("kind") == "row")
        row[field] = bogus
        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            for frame in frames:
                handle.write(encode_frame(frame))
        with pytest.raises(SnapshotError):
            load_snapshot(path, schema)
        recovered, report = recover(str(directory), schema)
        assert len(report.rejected_snapshots) == 1
        assert recovered.version == 0


def test_restore_validates_header_and_rows(schema):
    store = _populated(schema)
    header = store.snapshot_header()
    rows = list(store.snapshot_rows())
    with pytest.raises(StorageError):
        ShardedObjectStore.restore(schema, {**header, "shard_count": 0}, rows)
    with pytest.raises(StorageError):
        ShardedObjectStore.restore(
            schema, {**header, "shard_versions": [1]}, rows
        )
    with pytest.raises(StorageError):
        ShardedObjectStore.restore(
            schema, header, [("no_such_class", 1, {"a": 1})]
        )
    with pytest.raises(StorageError):
        ShardedObjectStore.restore(schema, header, [("cargo", 0, {})])


def test_prune_keeps_the_newest_two(tmp_path, schema):
    store = ShardedObjectStore(schema)
    paths = []
    for index in range(4):
        store.insert("cargo", {"desc": f"v{index}"})
        paths.append(write_snapshot(str(tmp_path), store))
    deleted = prune_snapshots(str(tmp_path))
    assert sorted(deleted) == sorted(paths[:2])
    kept = [path for _, path in list_snapshots(str(tmp_path))]
    assert kept == [paths[3], paths[2]]


# ----------------------------------------------------------------------
# Recovery decision tree
# ----------------------------------------------------------------------
def test_recover_empty_directory_yields_fresh_store(tmp_path, schema):
    store, report = recover(str(tmp_path), schema, shard_count=3)
    assert store.version == 0 and store.shard_count == 3
    assert report.clean and report.snapshot_path is None


def test_recover_ignores_stray_tmp_files(tmp_path, schema):
    store = _populated(schema)
    write_snapshot(str(tmp_path), store)
    # A crash mid-snapshot leaves a garbage .tmp; recovery must skip it.
    (tmp_path / "snapshot-000000009999.ndjson.tmp").write_bytes(b"garbage")
    recovered, report = recover(str(tmp_path), schema)
    assert report.clean
    assert recovered.version == store.version


def test_recover_falls_back_past_a_corrupt_snapshot(tmp_path, schema):
    store = ShardedObjectStore(schema, shard_count=2)
    store.insert("cargo", {"desc": "old"})
    write_snapshot(str(tmp_path), store)
    store.insert("cargo", {"desc": "new"})
    newest = write_snapshot(str(tmp_path), store)
    with open(newest, "r+b") as handle:
        handle.write(b"X")  # clobber the newest header
    recovered, report = recover(str(tmp_path), schema)
    assert len(report.rejected_snapshots) == 1
    assert recovered.version == store.version - 1
    assert report.snapshot_version == store.version - 1


def test_recovery_survives_crash_between_snapshot_and_rotation(
    tmp_path, schema
):
    # Build a data dir, then simulate "snapshot written, rotation never
    # ran": the stale segments' records are all <= the snapshot version,
    # so recovery must skip them silently, not double-apply them.
    store = ShardedObjectStore(schema, shard_count=2)
    manager = DurabilityManager(str(tmp_path), fsync_policy="off",
                                snapshot_frames=10_000)
    store, _ = manager.open(store)
    for index in range(6):
        store.insert("cargo", {"desc": f"pre {index}"})
        manager.commit()
    manager.flush()
    write_snapshot(str(tmp_path), store)  # snapshot WITHOUT rotating
    manager.close()
    recovered, report = recover(str(tmp_path), schema)
    assert report.clean, report.as_dict()
    assert recovered.version == store.version
    assert list(recovered.snapshot_rows()) == list(store.snapshot_rows())


def test_reopening_manager_collapses_the_wal_tail(tmp_path, schema):
    manager = DurabilityManager(str(tmp_path), fsync_policy="off")
    store, report = manager.open(ShardedObjectStore(schema, shard_count=2))
    assert report is None  # fresh dir adopts the provided store
    for index in range(5):
        store.insert("cargo", {"desc": f"row {index}"})
        manager.commit()
    manager.close()

    second = DurabilityManager(str(tmp_path), fsync_policy="off")
    recovered, report = second.open(ShardedObjectStore(schema, shard_count=2))
    assert report is not None and report.replayed_frames == 5
    assert recovered.version == 5
    # The reopen re-snapshotted: the WAL tail is collapsed, so a third
    # recovery replays nothing.
    assert second.stats()["snapshot_version"] == 5
    second.close()
    third, report3 = recover(str(tmp_path), schema)
    assert report3.snapshot_version == 5 and report3.replayed_frames == 0
    assert third.version == 5


def test_reopen_purges_stale_segments_beyond_a_gap(tmp_path, schema):
    # Recovery past a sequence gap discards intact frames whose seqs the
    # restarted server then re-uses.  The reopen must purge the old
    # segments immediately — left until the next rotation, a second
    # crash would merge both generations and the stale frames could
    # shadow the acked ones.
    wal_dir = tmp_path / "wal"
    manager = DurabilityManager(str(tmp_path), fsync_policy="off")
    store, _ = manager.open(ShardedObjectStore(schema, shard_count=2))
    for index in range(6):
        store.insert("cargo", {"desc": f"first {index}"})
        manager.commit()
    manager.close()

    # Simulate the crash artifact: the frame for seq 5 (shard of oid 5)
    # never hit disk, while seq 6 survives in the other shard — so
    # recovery must stop at version 4 and discard the seq-6 frame.
    victim = wal_dir / segment_name(store.shard_of(5), 0)
    lines = victim.read_bytes().splitlines(keepends=True)
    victim.write_bytes(b"".join(lines[:-1]))

    second = DurabilityManager(str(tmp_path), fsync_policy="off")
    store2, report = second.open(ShardedObjectStore(schema, shard_count=2))
    assert report is not None and report.discarded_frames == 1
    assert store2.version == 4
    # Every surviving segment starts at the recovered version: the
    # base-0 segments (still holding the discarded seq-6 frame) are gone.
    bases = {
        parse_segment_name(name)[1]
        for name in os.listdir(wal_dir)
        if parse_segment_name(name) is not None
    }
    assert bases == {4}

    # New acked writes re-use seqs 5..7...
    for index in range(3):
        store2.insert("cargo", {"desc": f"second {index}"})
        second.commit()
    second.close()

    # ...and a second recovery sees exactly them, not the stale seq 6.
    final, report3 = recover(str(tmp_path), schema)
    assert report3.clean, report3.as_dict()
    assert final.version == store2.version == 7
    assert list(final.snapshot_rows()) == list(store2.snapshot_rows())


def test_scan_prefers_frames_from_newer_segment_bases(tmp_path, schema):
    # Defense in depth for data dirs written by a pre-purge build: when
    # the same seq survives under two segment bases, the newer base's
    # frame (written after the newer snapshot, i.e. the acked re-use of
    # a discarded seq) must win regardless of scan order.
    def capture(build):
        records = []
        scratch = ShardedObjectStore(schema, shard_count=1)
        scratch.set_mutation_sink(records.append)
        build(scratch)
        return records

    stale = capture(
        lambda s: (
            s.insert("cargo", {"desc": "shared"}),
            s.insert("cargo", {"desc": "stale"}),
        )
    )
    acked = capture(
        lambda s: (
            s.insert("cargo", {"desc": "shared"}),
            s.insert("cargo", {"desc": "acked"}),
        )
    )

    wal_dir = tmp_path / "wal"
    wal_dir.mkdir()
    for base, records in ((0, stale), (1, [acked[1]])):
        path = wal_dir / segment_name(0, base)
        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(
                encode_frame({"kind": "segment", "shard": 0, "base": base})
            )
            for record in records:
                handle.write(
                    encode_frame(dict(record.as_dict(), kind="record"))
                )

    recovered, report = recover(str(tmp_path), schema, shard_count=1)
    assert recovered.version == 2
    rows = {oid: values for _, oid, values in recovered.snapshot_rows()}
    assert rows[2]["desc"] == "acked"
    assert any(
        issue.reason == "duplicate-seq" and "supersedes" in issue.detail
        for issue in report.wal_issues
    )
