"""The durable write path through ``OptimizationService`` and the gateway.

Covers the integration contracts: durability metadata on mutation results
and stats, WAL commit inside the write-lock span (partial batches
included), sink fork-safety (replay never double-writes frames), and the
parallel engine's worker catch-up running against a WAL-sinked store
without duplicating a single frame.
"""

import asyncio

import pytest

from repro.constraints import ConstraintRepository
from repro.data import build_evaluation_schema
from repro.durability import DurabilityManager, recover
from repro.engine.storage import ShardedObjectStore, StorageError
from repro.query import parse_query
from repro.service import OptimizationService


@pytest.fixture()
def schema():
    return build_evaluation_schema()


def _durable_service(schema, tmp_path, shard_count=3, **service_kwargs):
    manager = DurabilityManager(str(tmp_path), fsync_policy="off")
    store, _ = manager.open(ShardedObjectStore(schema, shard_count=shard_count))
    service = OptimizationService(
        schema,
        repository=ConstraintRepository(schema),
        store=store,
        **service_kwargs,
    )
    service.attach_durability(manager)
    return service, manager


def test_mutation_results_carry_durability_metadata(tmp_path, schema):
    service, manager = _durable_service(schema, tmp_path)
    result = service.mutate("insert", "cargo", values={"desc": "durable"})
    assert result.durability is not None
    assert result.durability["wal_frames"] == 1
    assert result.durability["fsynced"] is False  # policy "off"
    assert result.durability["snapshot_version"] == 0
    assert "durability" in result.as_dict()

    stats = service.stats()
    assert stats.durability is not None
    assert stats.durability["wal_frames"] == 1
    assert stats.durability["fsync_policy"] == "off"
    assert stats.as_dict()["durability"]["wal_commits"] == 1
    service.close()
    manager.close()


def test_without_durability_metadata_is_absent(schema):
    service = OptimizationService(
        schema,
        repository=ConstraintRepository(schema),
        store=ShardedObjectStore(schema),
    )
    result = service.mutate("insert", "cargo", values={"desc": "plain"})
    assert result.durability is None
    assert "durability" not in result.as_dict()
    assert service.stats().durability is None
    service.flush_durability()  # must be a harmless no-op
    service.close()


def test_failed_batch_keeps_its_applied_prefix_durable(tmp_path, schema):
    service, manager = _durable_service(schema, tmp_path)
    with pytest.raises(StorageError):
        service.mutate_many(
            [
                {"op": "insert", "class_name": "cargo", "values": {"desc": "a"}},
                {"op": "insert", "class_name": "cargo", "values": {"desc": "b"}},
                {"op": "delete", "class_name": "cargo", "oid": 999},
            ]
        )
    service.flush_durability()
    manager.close()
    recovered, report = recover(str(tmp_path), schema)
    # No rollback: the two applied inserts are real and must be durable.
    assert recovered.version == 2
    assert [i.values["desc"] for i in recovered.instances("cargo")] == ["a", "b"]
    assert report.clean


def test_journal_replay_never_feeds_the_wal_sink(schema):
    primary = ShardedObjectStore(schema, shard_count=2)
    replica = ShardedObjectStore(schema, shard_count=2)
    sunk = []
    replica.set_mutation_sink(sunk.append)
    primary.insert("cargo", {"desc": "x"})
    primary.insert("cargo", {"desc": "y"})
    # Replay is exactly the path forked workers (and recovery) take: it
    # must never re-emit frames through the replica's attached sink.
    assert replica.apply_journal(primary.journal_since(0)) == 2
    assert sunk == []
    # Direct mutations on the replica still reach the sink.
    replica.insert("cargo", {"desc": "z"})
    assert len(sunk) == 1 and sunk[0].op == "insert"


def test_sink_fires_even_with_journal_disabled(schema):
    store = ShardedObjectStore(schema, journal_limit=0)
    sunk = []
    store.set_mutation_sink(sunk.append)
    store.insert("cargo", {"desc": "unjournaled"})
    assert len(sunk) == 1  # WAL durability must not depend on journaling


def test_parallel_worker_sync_does_not_duplicate_wal_frames(tmp_path, schema):
    service, manager = _durable_service(
        schema,
        tmp_path,
        execution_mode="parallel",
        engine_workers=2,
        engine_min_partition_rows=1,
    )
    query = parse_query(
        "(SELECT {cargo.desc} { } {cargo.quantity >= 5} { } {cargo})"
    )
    mutations = 0
    for round_index in range(3):
        for row_index in range(4):
            service.mutate(
                "insert",
                "cargo",
                values={
                    "desc": f"r{round_index}-{row_index}",
                    "quantity": row_index * 10,
                },
            )
            mutations += 1
        # Forces the forked workers to catch up via journal replay while
        # the store carries a live WAL sink.
        service.execute(query, optimize=False)
    assert manager.stats()["wal_frames"] == mutations
    service.close()
    service.flush_durability()
    manager.close()
    recovered, report = recover(str(tmp_path), schema)
    assert report.clean, report.as_dict()
    assert recovered.version == mutations
    assert list(recovered.snapshot_rows()) == list(
        service.store.snapshot_rows()
    )


def test_gateway_stop_flushes_the_wal(tmp_path, schema):
    from repro.server import QueryGateway

    service, manager = _durable_service(schema, tmp_path)

    async def run():
        gateway = QueryGateway(service, "127.0.0.1", 0)
        await gateway.start()
        response = await gateway.dispatch(
            {
                "op": "insert",
                "id": 1,
                "class": "cargo",
                "values": {"desc": "drained"},
            }
        )
        assert response["ok"], response
        assert await gateway.stop()

    asyncio.run(run())
    fsyncs_after_stop = manager.stats()["wal_fsyncs"]
    assert fsyncs_after_stop >= 1  # stop() forced the drain flush
    manager.close()
    recovered, _ = recover(str(tmp_path), schema)
    assert [i.values["desc"] for i in recovered.instances("cargo")] == [
        "drained"
    ]
