"""Frame encoding and WAL segment mechanics, plus the tail-corruption fuzzer.

The fuzzer is the durability counterpart of the PR 5 protocol fuzzer:
seeded runs build a real data directory, then mangle segment tails —
truncation mid-frame, torn final lines, flipped payload bytes, corrupted
checksums, raw garbage — and recovery must always come back with the
longest trustworthy prefix and a stable issue report.  Never an
exception, never silently-wrong rows.
"""

import json
import os
import random

import pytest

from repro.data import build_evaluation_schema
from repro.durability import (
    DurabilityManager,
    FrameError,
    WriteAheadLog,
    decode_frame,
    encode_frame,
    read_segment,
    recover,
)
from repro.durability.wal import parse_segment_name, segment_name
from repro.engine.storage import ShardedObjectStore

from .crash_child import apply_prefix, build_schedule

#: Every reason code recovery may report — the "stable error report" set.
KNOWN_REASONS = {
    "torn",
    "invalid-json",
    "missing-crc",
    "checksum-mismatch",
    "bad-header",
    "bad-record",
    "duplicate-seq",
    "sequence-gap",
}


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def test_frame_round_trip_preserves_key_order():
    payload = {"zulu": 1, "alpha": {"b": 2, "a": 1}, "mid": [3, 1]}
    line = encode_frame(payload)
    assert line.endswith("\n")
    # Stored form keeps insertion order; crc rides last.
    assert line.index("zulu") < line.index("alpha") < line.index("mid")
    assert decode_frame(line) == payload


def test_frame_error_reasons_are_stable():
    line = encode_frame({"kind": "record", "seq": 1})
    with pytest.raises(FrameError) as torn:
        decode_frame(line[:-1])
    assert torn.value.reason == "torn"
    with pytest.raises(FrameError) as bad_json:
        decode_frame("{not json\n")
    assert bad_json.value.reason == "invalid-json"
    with pytest.raises(FrameError) as not_object:
        decode_frame("[1, 2]\n")
    assert not_object.value.reason == "invalid-json"
    with pytest.raises(FrameError) as missing:
        decode_frame('{"kind": "record"}\n')
    assert missing.value.reason == "missing-crc"
    body = json.loads(line)
    body["seq"] = 2  # payload changed, crc stale
    with pytest.raises(FrameError) as mismatch:
        decode_frame(json.dumps(body) + "\n")
    assert mismatch.value.reason == "checksum-mismatch"
    with pytest.raises(ValueError):
        encode_frame({"crc": 1})


def test_segment_names_round_trip():
    assert parse_segment_name(segment_name(7, 42)) == (7, 42)
    assert parse_segment_name("snapshot-000000000001.ndjson") is None
    assert parse_segment_name("shard-007.000000000042.ndjson.tmp") is None


# ----------------------------------------------------------------------
# WriteAheadLog
# ----------------------------------------------------------------------
def test_wal_append_commit_and_read_back(tmp_path):
    wal = WriteAheadLog(str(tmp_path), shard_count=2, base_version=0,
                        fsync_policy="always")
    wal.append(0, {"seq": 1, "op": "insert", "class": "cargo", "oid": 1,
                   "values": {"b": 2, "a": 1}})
    wal.append(1, {"seq": 2, "op": "delete", "class": "cargo", "oid": 2,
                   "values": None})
    assert wal.commit() == {"fsynced": True, "pending_fsync": 0}
    wal.close()
    frames, issue = read_segment(str(tmp_path / segment_name(0, 0)))
    assert issue is None
    assert frames[0] == {"kind": "segment", "shard": 0, "base": 0}
    assert frames[1]["seq"] == 1 and frames[1]["kind"] == "record"
    # values key order survives the disk round trip.
    assert list(frames[1]["values"]) == ["b", "a"]


def test_wal_fsync_policies(tmp_path):
    batch = WriteAheadLog(str(tmp_path / "b"), 1, 0,
                          fsync_policy="batch", fsync_interval=3)
    for expected in (False, False, True, False):
        batch.append(0, {"seq": 1, "op": "insert", "class": "c", "oid": 1,
                         "values": {}})
        assert batch.commit()["fsynced"] is expected
    batch.close()

    off = WriteAheadLog(str(tmp_path / "o"), 1, 0, fsync_policy="off")
    off.append(0, {"seq": 1, "op": "insert", "class": "c", "oid": 1,
                   "values": {}})
    assert off.commit()["fsynced"] is False
    synced_before = off.fsync_count
    off.flush()  # the drain path fsyncs even under "off"
    assert off.fsync_count > synced_before
    off.close()

    with pytest.raises(ValueError):
        WriteAheadLog(str(tmp_path / "x"), 1, 0, fsync_policy="sometimes")


def test_wal_rotate_deletes_superseded_segments(tmp_path):
    wal = WriteAheadLog(str(tmp_path), shard_count=2, base_version=0)
    wal.append(0, {"seq": 1, "op": "insert", "class": "c", "oid": 1,
                   "values": {}})
    wal.commit()
    wal.rotate(5)
    names = sorted(os.listdir(tmp_path))
    assert names == [segment_name(0, 5), segment_name(1, 5)]
    assert wal.appended_frames == 0
    assert wal.base_version == 5
    wal.close()


def test_wal_is_inert_in_a_forked_pid(tmp_path):
    wal = WriteAheadLog(str(tmp_path), shard_count=1, base_version=0)
    wal._pid = wal._pid + 1  # simulate being on the child side of a fork
    wal.append(0, {"seq": 1, "op": "insert", "class": "c", "oid": 1,
                   "values": {}})
    assert wal.commit() == {"fsynced": False, "pending_fsync": 0}
    wal.flush()
    wal.rotate(9)
    assert wal.appended_frames == 0  # the child-side append was refused
    frames, issue = read_segment(str(tmp_path / segment_name(0, 0)))
    assert issue is None
    assert len(frames) == 1  # only the parent-written header is on disk
    assert wal.base_version == 0  # rotate refused too


# ----------------------------------------------------------------------
# The tail-corruption fuzzer
# ----------------------------------------------------------------------
def _build_data_dir(tmp_path, ops_applied, snapshot_frames=500):
    schema = build_evaluation_schema()
    store = ShardedObjectStore(schema, shard_count=3)
    manager = DurabilityManager(
        str(tmp_path),
        fsync_policy="off",
        snapshot_frames=snapshot_frames,
    )
    store, _ = manager.open(store)
    ops = build_schedule(ops_applied)
    for spec in ops:
        if spec["op"] == "insert":
            store.insert(spec["class_name"], dict(spec["values"]))
        elif spec["op"] == "update":
            store.update(spec["class_name"], spec["oid"], dict(spec["values"]))
        else:
            store.delete(spec["class_name"], spec["oid"])
        manager.commit()
    manager.close()
    return schema, ops


def _corrupt_tail(rng, wal_dir):
    """Mangle one segment's tail; returns a description of what was done."""
    segments = sorted(
        name for name in os.listdir(wal_dir)
        if parse_segment_name(name) is not None
    )
    path = os.path.join(wal_dir, rng.choice(segments))
    with open(path, "rb") as handle:
        data = handle.read()
    mode = rng.choice(
        ["truncate", "tear", "flip-byte", "garbage-tail", "blank-crc"]
    )
    if mode == "truncate" and len(data) > 2:
        data = data[: rng.randrange(1, len(data))]
    elif mode == "tear":
        data = data.rstrip(b"\n")  # final frame loses its newline
    elif mode == "flip-byte" and len(data) > 2:
        index = rng.randrange(len(data) - 1)
        flipped = data[index] ^ (1 << rng.randrange(7)) or ord("x")
        data = data[:index] + bytes([flipped]) + data[index + 1 :]
    elif mode == "garbage-tail":
        data += bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
        data += b"\n" if rng.random() < 0.5 else b""
    else:  # blank-crc: rewrite the last line's crc digits
        head, _, last = data.rstrip(b"\n").rpartition(b"\n")
        last = last.replace(b'"crc":', b'"crc":9', 1)
        data = head + (b"\n" if head else b"") + last + b"\n"
    with open(path, "wb") as handle:
        handle.write(data)
    return mode, os.path.basename(path)


@pytest.mark.parametrize("seed", range(12))
def test_fuzzed_tail_corruption_recovers_longest_trusted_prefix(
    tmp_path, seed
):
    rng = random.Random(0xD15EA5E + seed)
    ops_applied = rng.randrange(30, 90)
    schema, ops = _build_data_dir(tmp_path, ops_applied)
    mode, name = _corrupt_tail(rng, str(tmp_path / "wal"))

    recovered, report = recover(str(tmp_path), schema)

    # Stable report: only documented reason codes, never an exception.
    assert {issue.reason for issue in report.wal_issues} <= KNOWN_REASONS, (
        mode,
        name,
        report.as_dict(),
    )
    # The snapshot floor always survives (it was not touched).
    assert recovered.version >= report.snapshot_version
    assert recovered.version <= ops_applied
    # No silent data loss *within* the recovered prefix: state is exactly
    # the uninterrupted prefix run of the same schedule.
    oracle = ShardedObjectStore(schema, shard_count=3)
    apply_prefix(oracle, ops, recovered.version)
    assert list(recovered.snapshot_rows()) == list(oracle.snapshot_rows())
    assert recovered.shard_versions() == oracle.shard_versions()
    # And anything short of the full run is accounted for in the report.
    if recovered.version < ops_applied:
        assert report.wal_issues, (mode, name, report.as_dict())


def test_fuzzed_corruption_after_snapshot_rotation(tmp_path):
    # Same contract with snapshots + rotation in the middle of the run.
    rng = random.Random(0x5EED)
    schema, ops = _build_data_dir(tmp_path, 80, snapshot_frames=25)
    recovered_full, report_full = recover(str(tmp_path), schema)
    assert report_full.clean and recovered_full.version == 80
    assert report_full.snapshot_version > 0  # rotation actually happened
    _corrupt_tail(rng, str(tmp_path / "wal"))
    recovered, report = recover(str(tmp_path), schema)
    assert {i.reason for i in report.wal_issues} <= KNOWN_REASONS
    assert report.snapshot_version <= recovered.version <= 80
    oracle = ShardedObjectStore(schema, shard_count=3)
    apply_prefix(oracle, ops, recovered.version)
    assert list(recovered.snapshot_rows()) == list(oracle.snapshot_rows())
