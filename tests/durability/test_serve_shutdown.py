"""SIGTERM must drain the serve process like Ctrl-C (regression).

``run_serve`` used to handle only ``KeyboardInterrupt``: a SIGTERM — the
normal container stop signal — killed the process without the graceful
drain, so acked-but-unflushed WAL state could be lost and in-flight
requests were dropped on the floor.  This boots the real CLI server
process with a data dir, writes through the real TCP path, SIGTERMs it,
and asserts the graceful path ran (clean exit code, the drain log line)
and the write survived into the recovered store.
"""

import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.data import build_evaluation_schema
from repro.durability import recover


def _spawn_server(data_dir):
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--db",
            "DB1",
            "--port",
            "0",
            "--data-dir",
            str(data_dir),
            "--wal-fsync",
            "batch",
            "--wal-fsync-interval",
            "1000",  # batched far beyond the test's writes: only the
        ],  # drain path can make them durable
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _await_port(proc):
    pattern = re.compile(r"serving DB1 on ([\d.]+):(\d+)")
    deadline = time.monotonic() + 120
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            pytest.fail("server exited early:\n" + "".join(lines))
        lines.append(line)
        match = pattern.search(line)
        if match:
            return match.group(1), int(match.group(2))
    pytest.fail("server never reported its port:\n" + "".join(lines))


def test_sigterm_drains_and_flushes_the_wal(tmp_path):
    data_dir = tmp_path / "data"
    proc = _spawn_server(data_dir)
    try:
        host, port = _await_port(proc)
        for _ in range(240):
            try:
                socket.create_connection((host, port), 1).close()
                break
            except OSError:
                time.sleep(0.25)

        import asyncio

        async def write():
            from repro.server import AsyncGatewayClient

            client = await AsyncGatewayClient.connect(
                host, port, client_id="sigterm-test"
            )
            try:
                payload = await client.insert(
                    "cargo", {"desc": "sigterm survivor", "quantity": 1}
                )
            finally:
                await client.close()
            return payload

        payload = asyncio.run(write())
        # Batched policy, interval 1000: the frame is acked but NOT yet
        # fsynced — only the SIGTERM drain can force it down.
        assert payload["durability"]["fsynced"] is False

        proc.send_signal(signal.SIGTERM)
        out = proc.stdout.read()
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        proc.stdout.close()

    # The graceful path ran (pre-fix: killed by the default handler,
    # exit code -15, no drain line)...
    assert "gateway stopped (drained=True)" in out

    # ...and the acked write is recoverable from disk.
    schema = build_evaluation_schema()
    recovered, report = recover(data_dir, schema)
    descs = [i.values["desc"] for i in recovered.instances("cargo")]
    assert "sigterm survivor" in descs
    assert not report.rejected_snapshots


def test_gateway_crash_propagates_out_of_run_serve(
    tmp_path, monkeypatch, capsys
):
    # A crashing gateway must not be mistaken for a graceful stop:
    # run_serve used to await FIRST_COMPLETED and fall through to the
    # shutdown path with exit code 0, leaving the server's exception
    # unretrieved.  The error must still drain/close (no data loss) and
    # then surface, so `serve` exits non-zero.
    from repro import cli
    from repro.server import QueryGateway

    async def crash(self):
        raise RuntimeError("gateway exploded")

    monkeypatch.setattr(QueryGateway, "serve_forever", crash)
    with pytest.raises(RuntimeError, match="gateway exploded"):
        cli.run_serve(
            [
                "--db",
                "DB1",
                "--port",
                "0",
                "--data-dir",
                str(tmp_path / "data"),
            ]
        )
    out = capsys.readouterr().out
    assert "gateway stopped" in out  # the drain still ran first
