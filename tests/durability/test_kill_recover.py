"""The tentpole pin: SIGKILL a durable server mid-schedule, recover exactly.

A child process (``crash_child.py``) applies a seeded mutation schedule
through a durable ``OptimizationService`` with ``fsync=always``, printing
one ACK line per acked write.  The parent reads a seeded number of ACKs,
SIGKILLs the child at that frame, recovers the data directory in-process
and asserts

* **no acked write is lost** — the recovered version covers the last ACK
  the parent read before killing;
* **byte-identical state** — rows (values key order included), per-shard
  version counters, and OID allocators all equal an uninterrupted run of
  the same schedule prefix on a fresh store;
* **engines agree after recovery** — the recovered store answers a query
  identically to the oracle store on the configured ``REPRO_ENGINE``
  (CI runs this file once per engine leg).
"""

import importlib.util
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.constraints import ConstraintRepository
from repro.data import build_evaluation_schema
from repro.durability import recover
from repro.engine.storage import ShardedObjectStore
from repro.query import parse_query
from repro.service import OptimizationService

_CHILD = Path(__file__).with_name("crash_child.py")


def _load_child_module():
    spec = importlib.util.spec_from_file_location("crash_child", _CHILD)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


crash_child = _load_child_module()

TOTAL = 160


def _child_env():
    """Env for the child: the parent's ``repro`` on PYTHONPATH, verbatim."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    return env


def _rows_bytes(store) -> bytes:
    """Canonical row serialization that still preserves values key order."""
    return json.dumps(
        [
            {"class": class_name, "oid": oid, "values": values}
            for class_name, oid, values in store.snapshot_rows()
        ]
    ).encode()


@pytest.mark.parametrize("kill_seed", [0xC0FFEE, 0xBEEF, 7])
def test_sigkill_at_seeded_frame_recovers_exactly(tmp_path, kill_seed):
    import random

    data_dir = tmp_path / f"data-{kill_seed}"
    env = _child_env()
    proc = subprocess.Popen(
        [sys.executable, str(_CHILD), str(data_dir), str(TOTAL)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    kill_after = random.Random(kill_seed).randint(20, TOTAL - 20)
    acked_version = 0
    acks = 0
    try:
        while acks < kill_after:
            line = proc.stdout.readline()
            if not line:
                break
            if line.startswith("ACK "):
                acks += 1
                acked_version = int(line.split()[2])
        assert acks > 0, proc.stderr.read()
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30)
        proc.stdout.close()
        proc.stderr.close()

    schema = build_evaluation_schema()
    recovered, report = recover(data_dir, schema)
    # fsync=always: every acked frame must have survived the SIGKILL.
    assert recovered.version >= acked_version
    assert recovered.version <= TOTAL

    oracle = ShardedObjectStore(schema, shard_count=3)
    crash_child.apply_prefix(
        oracle, crash_child.build_schedule(TOTAL), recovered.version
    )
    assert _rows_bytes(recovered) == _rows_bytes(oracle)
    assert recovered.shard_versions() == oracle.shard_versions()
    assert recovered.snapshot_header() == oracle.snapshot_header()
    assert report.final_version == recovered.version

    # The recovered store must answer like the oracle on this engine leg.
    query = parse_query(crash_child.QUERY_TEXT)
    engine_kwargs = {}
    if os.environ.get("REPRO_ENGINE") == "parallel":
        engine_kwargs = {
            "engine_workers": 2,
            "engine_min_partition_rows": 1,
        }
    with OptimizationService(
        schema,
        repository=ConstraintRepository(schema),
        store=recovered,
        **engine_kwargs,
    ) as service, OptimizationService(
        schema,
        repository=ConstraintRepository(schema),
        store=oracle,
        **engine_kwargs,
    ) as oracle_service:
        got = service.execute(query, optimize=False)
        expected = oracle_service.execute(query, optimize=False)
        assert got.execution.rows == expected.execution.rows


def test_uninterrupted_child_run_recovers_to_full_schedule(tmp_path):
    data_dir = tmp_path / "data-full"
    proc = subprocess.run(
        [sys.executable, str(_CHILD), str(data_dir), "60"],
        capture_output=True,
        text=True,
        timeout=120,
        env=_child_env(),
    )
    assert proc.returncode == 0, proc.stderr
    assert "DONE" in proc.stdout
    schema = build_evaluation_schema()
    recovered, report = recover(data_dir, schema)
    assert report.clean
    assert recovered.version == 60
    oracle = ShardedObjectStore(schema, shard_count=3)
    crash_child.apply_prefix(oracle, crash_child.build_schedule(60), 60)
    assert _rows_bytes(recovered) == _rows_bytes(oracle)
    assert recovered.shard_versions() == oracle.shard_versions()
