"""Integration tests for the planner, executor and cost model."""

import pytest

from repro.constraints import Predicate
from repro.data import build_evaluation_schema
from repro.engine import (
    ConventionalPlanner,
    CostModel,
    DatabaseStatistics,
    ObjectStore,
    PlanningError,
    QueryExecutor,
)
from repro.query import Query


@pytest.fixture(scope="module")
def database():
    schema = build_evaluation_schema()
    store = ObjectStore(schema)
    suppliers = [
        store.insert("supplier", {"name": name, "region": "west", "rating": 3})
        for name in ("SFI", "Acme", "Globex")
    ]
    vehicles = [
        store.insert(
            "vehicle",
            {"vehicle_no": f"V{i}", "desc": desc, "class": 2 + (i % 3), "capacity": 4000},
        )
        for i, desc in enumerate(["refrigerated truck", "van", "tanker", "van"])
    ]
    for i in range(8):
        supplier = suppliers[i % len(suppliers)]
        vehicle = vehicles[i % len(vehicles)]
        cargo = store.insert(
            "cargo",
            {
                "code": f"C{i}",
                "desc": "frozen food" if i % 4 == 0 else "textiles",
                "quantity": 50 + i,
                "category": "general",
                "supplies": supplier.oid,
                "collects": vehicle.oid,
            },
        )
        store.update("supplier", supplier.oid, {"supplies": [cargo.oid]})
        store.update("vehicle", vehicle.oid, {"collects": [cargo.oid]})
    statistics = DatabaseStatistics.collect(schema, store)
    return schema, store, statistics


def two_class_query():
    return Query(
        projections=("cargo.code", "vehicle.vehicle_no"),
        selective_predicates=(Predicate.equals("cargo.desc", "frozen food"),),
        relationships=("collects",),
        classes=("cargo", "vehicle"),
    )


def test_single_class_plan_and_execution(database):
    schema, store, statistics = database
    query = Query(
        projections=("cargo.code",),
        selective_predicates=(Predicate.equals("cargo.desc", "frozen food"),),
        classes=("cargo",),
    )
    planner = ConventionalPlanner(schema, statistics)
    plan = planner.plan(query)
    assert plan.uses_index()
    result = QueryExecutor(schema, store).execute_plan(plan)
    assert result.row_count == 2
    assert result.metrics.index_lookups == 1
    assert result.metrics.instances_retrieved == 2


def test_two_class_traversal_execution(database):
    schema, store, statistics = database
    query = two_class_query()
    executor = QueryExecutor(schema, store)
    result = executor.execute(query)
    assert result.row_count == 2
    for row in result.rows:
        assert row["cargo.desc"] == "frozen food"
        assert "vehicle.vehicle_no" in row
    projected = result.projected_rows()
    assert set(projected[0]) == {"cargo.code", "vehicle.vehicle_no"}


def test_nested_loop_strategy_matches_hash_results(database):
    schema, store, _statistics = database
    query = two_class_query()
    hash_result = QueryExecutor(schema, store, join_strategy="hash").execute(query)
    nested = QueryExecutor(schema, store, join_strategy="nested_loop").execute(query)
    key = lambda row: (row["cargo.code"], row["vehicle.vehicle_no"])
    assert sorted(map(key, hash_result.rows)) == sorted(map(key, nested.rows))
    # The nested-loop strategy retrieves strictly more instances.
    assert (
        nested.metrics.instances_retrieved
        >= hash_result.metrics.instances_retrieved
    )
    with pytest.raises(ValueError):
        QueryExecutor(schema, store, join_strategy="merge")


def test_cross_class_filter(database):
    schema, store, _statistics = database
    query = Query(
        projections=("driver.name",),
        join_predicates=(
            Predicate.comparison("driver.licenseClass", ">=", "vehicle.class"),
        ),
        relationships=("drives",),
        classes=("driver", "vehicle"),
    )
    result = QueryExecutor(schema, store).execute(query)
    assert result.row_count == 0  # no drivers inserted -> empty, but no crash


def test_plan_explain_mentions_nodes(database):
    schema, _store, statistics = database
    planner = ConventionalPlanner(schema, statistics)
    plan = planner.plan(two_class_query())
    text = plan.explain()
    assert "Project" in text and "Traverse" in text
    assert plan.class_order[0] in ("cargo", "vehicle")


def test_disconnected_query_raises(database):
    schema, _store, statistics = database
    planner = ConventionalPlanner(schema, statistics)
    query = Query(
        projections=("cargo.code", "driver.name"),
        classes=("cargo", "driver"),
    )
    with pytest.raises(PlanningError):
        planner.plan(query)


def test_cost_model_estimates_and_measured_costs(database):
    schema, store, statistics = database
    cost_model = CostModel(schema, statistics)
    query = two_class_query()
    estimate = cost_model.estimate_query(query)
    assert estimate.total > 0
    assert cost_model.estimate_query_cost(query) == pytest.approx(estimate.total)
    metrics = QueryExecutor(schema, store).execute(query).metrics
    assert cost_model.measured_cost(metrics) > 0


def test_index_scan_is_estimated_cheaper(database):
    schema, _store, statistics = database
    cost_model = CostModel(schema, statistics)
    indexed = cost_model.scan_estimate(
        "cargo", [Predicate.equals("cargo.desc", "frozen food")]
    )
    unindexed = cost_model.scan_estimate(
        "cargo", [Predicate.equals("cargo.category", "general")]
    )
    assert indexed.total < unindexed.total


def test_driver_class_prefers_selective_class(database):
    schema, _store, statistics = database
    cost_model = CostModel(schema, statistics)
    assert cost_model.driver_class(two_class_query()) == "cargo"


def test_execution_metrics_merge():
    from repro.engine import ExecutionMetrics

    left = ExecutionMetrics(instances_retrieved=1, predicate_evaluations=2)
    right = ExecutionMetrics(instances_retrieved=3, rows_output=4)
    merged = left.merge(right)
    assert merged.instances_retrieved == 4
    assert merged.rows_output == 4
    assert merged.as_dict()["predicate_evaluations"] == 2
