"""Integration tests for the planner, executor and cost model."""

import pytest

from repro.constraints import Predicate
from repro.engine import (
    ConventionalPlanner,
    CostModel,
    PlanningError,
    QueryExecutor,
)
from repro.query import Query


@pytest.fixture(scope="module")
def database(seeded_logistics_database):
    """The shared seeded logistics database (see tests/conftest.py)."""
    return seeded_logistics_database


def two_class_query():
    return Query(
        projections=("cargo.code", "vehicle.vehicle_no"),
        selective_predicates=(Predicate.equals("cargo.desc", "frozen food"),),
        relationships=("collects",),
        classes=("cargo", "vehicle"),
    )


def test_single_class_plan_and_execution(database):
    schema, store, statistics = database
    query = Query(
        projections=("cargo.code",),
        selective_predicates=(Predicate.equals("cargo.desc", "frozen food"),),
        classes=("cargo",),
    )
    planner = ConventionalPlanner(schema, statistics)
    plan = planner.plan(query)
    assert plan.uses_index()
    result = QueryExecutor(schema, store).execute_plan(plan)
    assert result.row_count == 2
    assert result.metrics.index_lookups == 1
    assert result.metrics.instances_retrieved == 2


def test_two_class_traversal_execution(database):
    schema, store, statistics = database
    query = two_class_query()
    executor = QueryExecutor(schema, store)
    result = executor.execute(query)
    assert result.row_count == 2
    for row in result.rows:
        assert row["cargo.desc"] == "frozen food"
        assert "vehicle.vehicle_no" in row
    projected = result.projected_rows()
    assert set(projected[0]) == {"cargo.code", "vehicle.vehicle_no"}


def test_nested_loop_strategy_matches_hash_results(database):
    schema, store, _statistics = database
    query = two_class_query()
    hash_result = QueryExecutor(schema, store, join_strategy="hash").execute(query)
    nested = QueryExecutor(schema, store, join_strategy="nested_loop").execute(query)
    def key(row):
        return (row["cargo.code"], row["vehicle.vehicle_no"])

    assert sorted(map(key, hash_result.rows)) == sorted(map(key, nested.rows))
    # The nested-loop strategy retrieves strictly more instances.
    assert (
        nested.metrics.instances_retrieved
        >= hash_result.metrics.instances_retrieved
    )
    with pytest.raises(ValueError):
        QueryExecutor(schema, store, join_strategy="merge")


def test_cross_class_filter(database):
    schema, store, _statistics = database
    query = Query(
        projections=("driver.name",),
        join_predicates=(
            Predicate.comparison("driver.licenseClass", ">=", "vehicle.class"),
        ),
        relationships=("drives",),
        classes=("driver", "vehicle"),
    )
    result = QueryExecutor(schema, store).execute(query)
    assert result.row_count == 0  # no drivers inserted -> empty, but no crash


def test_plan_explain_mentions_nodes(database):
    schema, _store, statistics = database
    planner = ConventionalPlanner(schema, statistics)
    plan = planner.plan(two_class_query())
    text = plan.explain()
    assert "Project" in text and "Traverse" in text
    assert plan.class_order[0] in ("cargo", "vehicle")


def test_disconnected_query_raises(database):
    schema, _store, statistics = database
    planner = ConventionalPlanner(schema, statistics)
    query = Query(
        projections=("cargo.code", "driver.name"),
        classes=("cargo", "driver"),
    )
    with pytest.raises(PlanningError):
        planner.plan(query)


def test_cost_model_estimates_and_measured_costs(database):
    schema, store, statistics = database
    cost_model = CostModel(schema, statistics)
    query = two_class_query()
    estimate = cost_model.estimate_query(query)
    assert estimate.total > 0
    assert cost_model.estimate_query_cost(query) == pytest.approx(estimate.total)
    metrics = QueryExecutor(schema, store).execute(query).metrics
    assert cost_model.measured_cost(metrics) > 0


def test_index_scan_is_estimated_cheaper(database):
    schema, _store, statistics = database
    cost_model = CostModel(schema, statistics)
    indexed = cost_model.scan_estimate(
        "cargo", [Predicate.equals("cargo.desc", "frozen food")]
    )
    unindexed = cost_model.scan_estimate(
        "cargo", [Predicate.equals("cargo.category", "general")]
    )
    assert indexed.total < unindexed.total


def test_driver_class_prefers_selective_class(database):
    schema, _store, statistics = database
    cost_model = CostModel(schema, statistics)
    assert cost_model.driver_class(two_class_query()) == "cargo"


def test_plan_required_columns_contract(database):
    """Every node declares the qualified columns it reads."""
    schema, _store, statistics = database
    query = Query(
        projections=("cargo.code", "vehicle.vehicle_no"),
        selective_predicates=(Predicate.equals("cargo.desc", "frozen food"),),
        join_predicates=(
            Predicate.comparison("cargo.quantity", ">=", "vehicle.class"),
        ),
        relationships=("collects",),
        classes=("cargo", "vehicle"),
    )
    plan = ConventionalPlanner(schema, statistics).plan(query)
    columns = set(plan.required_columns())
    # Projections, the scan's (index) predicate, the traversal pointer and
    # the cross-class filter operands must all be declared.
    assert {"cargo.code", "vehicle.vehicle_no", "cargo.desc"} <= columns
    assert "cargo.quantity" in columns and "vehicle.class" in columns
    assert any(column.endswith(".collects") for column in columns)
    # Leaf default: a bare node with no predicates declares nothing.
    from repro.engine import ScanNode

    assert ScanNode(class_name="cargo").required_columns() == ()


def test_planner_mode_does_not_change_plan_shape(database):
    """Both modes must emit structurally identical plans (parity depends on it)."""
    schema, _store, statistics = database
    query = two_class_query()
    rowwise_plan = ConventionalPlanner(
        schema, statistics, execution_mode="rowwise"
    ).plan(query)
    vectorized_plan = ConventionalPlanner(
        schema, statistics, execution_mode="vectorized"
    ).plan(query)
    assert rowwise_plan.root == vectorized_plan.root
    assert rowwise_plan.class_order == vectorized_plan.class_order
    assert rowwise_plan.execution_mode.value == "rowwise"
    assert vectorized_plan.execution_mode.value == "vectorized"
    assert "vectorized batch execution" in vectorized_plan.notes


def test_batch_cost_estimates(database, small_setup):
    """Vectorized estimates discount per-row predicate CPU, plus a one-off
    compilation charge — so they cross over with extent size."""
    from repro.engine import ExecutionMode

    schema, _store, statistics = database
    cost_model = CostModel(schema, statistics)
    query = two_class_query()
    rowwise = cost_model.estimate_query(query, ExecutionMode.ROWWISE)
    vectorized = cost_model.estimate_query(query, ExecutionMode.VECTORIZED)
    # Same instances and pointers are touched; only predicate CPU changes.
    assert vectorized.retrieval == pytest.approx(rowwise.retrieval)
    assert vectorized.traversal == pytest.approx(rowwise.traversal)
    # The default (no mode) remains the row-wise estimate.
    assert cost_model.estimate_query_cost(query) == pytest.approx(rowwise.total)
    # A predicate-free query pays no compilation setup, so the estimates
    # coincide.
    bare = Query(projections=("cargo.code",), classes=("cargo",))
    assert cost_model.estimate_query_cost(
        bare, ExecutionMode.VECTORIZED
    ) == pytest.approx(cost_model.estimate_query_cost(bare))
    assert cost_model.vectorization_speedup(bare) == pytest.approx(1.0)
    # Workload-level behaviour on a DB1-sized database: retrieval/traversal
    # never change, the compilation overhead is bounded (speedup never drops
    # meaningfully below 1), and queries that evaluate predicates over whole
    # extents estimate cheaper vectorized.
    db1_cost_model = CostModel(small_setup.schema, small_setup.statistics)
    speedups = []
    for workload_query in small_setup.queries:
        row_estimate = db1_cost_model.estimate_query(
            workload_query, ExecutionMode.ROWWISE
        )
        vec_estimate = db1_cost_model.estimate_query(
            workload_query, ExecutionMode.VECTORIZED
        )
        assert vec_estimate.retrieval == pytest.approx(row_estimate.retrieval)
        assert vec_estimate.traversal == pytest.approx(row_estimate.traversal)
        speedups.append(db1_cost_model.vectorization_speedup(workload_query))
    assert min(speedups) > 0.9
    assert max(speedups) > 1.0


def test_execution_metrics_merge():
    from repro.engine import ExecutionMetrics

    left = ExecutionMetrics(instances_retrieved=1, predicate_evaluations=2)
    right = ExecutionMetrics(instances_retrieved=3, rows_output=4)
    merged = left.merge(right)
    assert merged.instances_retrieved == 4
    assert merged.rows_output == 4
    assert merged.as_dict()["predicate_evaluations"] == 2
