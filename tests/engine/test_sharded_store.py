"""Sharded object store: routing, merged views, and generation parity."""

import pytest

from repro.data import TABLE_4_1_SPECS, DatabaseGenerator
from repro.engine import ObjectStore, ShardedObjectStore, StorageError
from repro.constraints import Predicate


def _fill(store, rows=12):
    """Insert a deterministic batch of cargo/vehicle instances."""
    vehicles = [
        store.insert("vehicle", {"vehicle_no": f"V{i}", "desc": "van", "class": i % 3})
        for i in range(rows // 2)
    ]
    cargos = [
        store.insert(
            "cargo",
            {
                "code": f"C{i}",
                "desc": "frozen food" if i % 2 == 0 else "textiles",
                "quantity": 10 * i,
                "category": "general",
                "collects": vehicles[i % len(vehicles)].oid,
            },
        )
        for i in range(rows)
    ]
    return vehicles, cargos


def test_oid_routing_and_shard_slices(evaluation_schema):
    store = ShardedObjectStore(evaluation_schema, shard_count=3)
    _vehicles, cargos = _fill(store)
    assert store.shard_count == 3
    for instance in cargos:
        assert store.shard_of(instance.oid) == instance.oid % 3
        shard = store.shards[store.shard_of(instance.oid)]
        assert shard.by_oid["cargo"][instance.oid] is instance
    # Shard slices partition the extent and the merged view is OID-ordered.
    slices = [store.instances_in_shard("cargo", s) for s in range(3)]
    assert sum(len(part) for part in slices) == len(cargos)
    merged = store.instances("cargo")
    assert merged == sorted(merged, key=lambda i: i.oid)
    assert {i.oid for part in slices for i in part} == {i.oid for i in merged}


def test_sharded_store_matches_single_shard(evaluation_schema):
    single = ObjectStore(evaluation_schema)
    sharded = ShardedObjectStore(evaluation_schema, shard_count=4)
    _fill(single)
    _fill(sharded)
    assert [i.oid for i in single.instances("cargo")] == [
        i.oid for i in sharded.instances("cargo")
    ]
    assert single.counts() == sharded.counts()
    assert single.total_instances() == sharded.total_instances()
    for oid in (1, 5, 9):
        assert sharded.get("cargo", oid).values == single.get("cargo", oid).values
    # Index lookups answer identically (equality and ranges).
    for predicate in (
        Predicate.equals("cargo.desc", "frozen food"),
        Predicate.selection("vehicle.class", ">=", 1),
        Predicate.selection("vehicle.class", "<", 2),
    ):
        single_oids = single.indexes.lookup(predicate)
        sharded_oids = sharded.indexes.lookup(predicate)
        assert single_oids is not None
        assert sorted(single_oids) == sorted(sharded_oids)
    assert single.indexes.distinct_count("cargo", "desc") == (
        sharded.indexes.distinct_count("cargo", "desc")
    )


def test_range_lookup_order_matches_single_shard(evaluation_schema):
    """Range lookups must merge in (value, oid) order, not OID order.

    A single SortedIndex answers ranges sorted by (value, oid); the shard
    set's merge must reproduce exactly that sequence, because index-scan
    candidate order determines result-row order.  Values are deliberately
    anti-correlated with OIDs so the two orders differ.
    """
    single = ObjectStore(evaluation_schema)
    sharded = ShardedObjectStore(evaluation_schema, shard_count=3)
    for store in (single, sharded):
        for i in range(20):
            store.insert(
                "vehicle",
                {"vehicle_no": f"V{i}", "desc": "van", "class": (37 * (i + 1)) % 11},
            )
    for predicate in (
        Predicate.selection("vehicle.class", ">", 2),
        Predicate.selection("vehicle.class", "<=", 8),
        Predicate.selection("vehicle.class", ">=", 5),
    ):
        single_oids = single.indexes.lookup(predicate)
        sharded_oids = sharded.indexes.lookup(predicate)
        assert single_oids == sharded_oids, str(predicate)
        assert single_oids != sorted(single_oids), (
            "test data failed to decouple value order from OID order"
        )


def test_mutations_route_and_bump_versions(evaluation_schema):
    store = ShardedObjectStore(evaluation_schema, shard_count=2)
    _vehicles, cargos = _fill(store, rows=6)
    before = store.version
    target = cargos[3]
    shard_id = store.shard_of(target.oid)
    shard_before = store.shard_versions()[shard_id]
    store.update("cargo", target.oid, {"desc": "relocated goods"})
    assert store.version == before + 1
    assert store.shard_versions()[shard_id] == shard_before + 1
    assert store.indexes.lookup(
        Predicate.equals("cargo.desc", "relocated goods")
    ) == [target.oid]
    store.delete("cargo", target.oid)
    assert store.get("cargo", target.oid) is None
    assert target.oid not in [i.oid for i in store.instances("cargo")]
    with pytest.raises(StorageError):
        store.delete("cargo", target.oid)


def test_rebuild_indexes_refreshes_global_view(evaluation_schema):
    """In-place value repairs followed by rebuild must be visible globally.

    Regression test: the store-level index facade used to alias the shard's
    IndexManager object, so a rebuild (which replaces that object) left the
    facade answering from the stale pre-repair index.
    """
    for shard_count in (1, 3):
        store = ShardedObjectStore(evaluation_schema, shard_count=shard_count)
        _fill(store, rows=6)
        victim = store.instances("cargo")[0]
        victim.values["desc"] = "explosives"  # bypasses update() on purpose
        store.rebuild_indexes()
        oids = store.indexes.lookup(Predicate.equals("cargo.desc", "explosives"))
        assert oids == [victim.oid], f"stale index view with {shard_count} shards"


def test_oid_index_and_merged_cache_invalidation(evaluation_schema):
    store = ShardedObjectStore(evaluation_schema, shard_count=2)
    _fill(store, rows=4)
    index = store.oid_index("cargo")
    assert set(index) == {i.oid for i in store.instances("cargo")}
    inserted = store.insert(
        "cargo", {"code": "CX", "desc": "late", "quantity": 1, "category": "general"}
    )
    assert inserted.oid in store.oid_index("cargo")
    assert inserted in store.instances("cargo")


def test_invalid_shard_count_rejected(evaluation_schema):
    with pytest.raises(StorageError):
        ShardedObjectStore(evaluation_schema, shard_count=0)


def test_generation_is_sharding_independent():
    plain = DatabaseGenerator(seed=5).generate(TABLE_4_1_SPECS["DB1"])
    sharded = DatabaseGenerator(seed=5).generate(TABLE_4_1_SPECS["DB1"], shard_count=4)
    assert sharded.store.shard_count == 4
    for class_name in plain.schema.class_names():
        left = plain.store.instances(class_name)
        right = sharded.store.instances(class_name)
        assert [i.oid for i in left] == [i.oid for i in right]
        assert [i.values for i in left] == [i.values for i in right]
    assert plain.value_catalog == sharded.value_catalog


def test_generation_replay_cache_returns_independent_stores():
    generator = DatabaseGenerator(seed=6)
    first = generator.generate(TABLE_4_1_SPECS["DB1"])
    second = generator.generate(TABLE_4_1_SPECS["DB1"])
    assert first.store is not second.store
    assert [i.values for i in first.store.instances("cargo")] == [
        i.values for i in second.store.instances("cargo")
    ]
    # Mutating one generated database must not leak into later replays.
    victim = first.store.instances("cargo")[0]
    first.store.update("cargo", victim.oid, {"quantity": -1})
    third = generator.generate(TABLE_4_1_SPECS["DB1"])
    assert third.store.get("cargo", victim.oid).values["quantity"] != -1
