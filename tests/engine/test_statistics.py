"""Unit tests for database statistics and selectivity estimation."""

import pytest

from repro.constraints import Predicate
from repro.data import build_evaluation_schema
from repro.engine import DatabaseStatistics, ObjectStore
from repro.engine.statistics import (
    DEFAULT_EQUALITY_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
)


@pytest.fixture()
def stats():
    schema = build_evaluation_schema()
    store = ObjectStore(schema)
    for index in range(10):
        store.insert(
            "cargo",
            {
                "code": f"C{index}",
                "desc": "frozen food" if index < 2 else "textiles",
                "quantity": 10 * (index + 1),
                "category": "general",
            },
        )
    return DatabaseStatistics.collect(schema, store)


def test_cardinalities(stats):
    assert stats.cardinality("cargo") == 10
    assert stats.cardinality("vehicle") == 0


def test_attribute_statistics(stats):
    desc = stats.attribute_statistics("cargo", "desc")
    assert desc.distinct_values == 2
    quantity = stats.attribute_statistics("cargo", "quantity")
    assert quantity.minimum == 10 and quantity.maximum == 100
    assert stats.distinct("cargo", "desc") == 2
    assert stats.distinct("vehicle", "desc") is None


def test_equality_selectivity_uses_distinct_counts(stats):
    predicate = Predicate.equals("cargo.desc", "frozen food")
    assert stats.selectivity(predicate) == pytest.approx(0.5)
    unknown = Predicate.equals("vehicle.desc", "van")
    assert stats.selectivity(unknown) == DEFAULT_EQUALITY_SELECTIVITY


def test_range_selectivity_interpolates(stats):
    low = Predicate.selection("cargo.quantity", "<=", 10)
    high = Predicate.selection("cargo.quantity", ">=", 100)
    middle = Predicate.selection("cargo.quantity", ">=", 55)
    assert stats.selectivity(low) == pytest.approx(0.0)
    assert stats.selectivity(high) == pytest.approx(0.0)
    assert 0.4 <= stats.selectivity(middle) <= 0.6
    unknown = Predicate.selection("vehicle.class", ">=", 3)
    assert stats.selectivity(unknown) == DEFAULT_RANGE_SELECTIVITY


def test_inequality_selectivity(stats):
    predicate = Predicate.selection("cargo.desc", "!=", "frozen food")
    assert stats.selectivity(predicate) == pytest.approx(0.5)


def test_join_selectivity(stats):
    join = Predicate.comparison("cargo.quantity", "=", "cargo.code")
    value = stats.selectivity(join)
    assert 0.0 < value <= 1.0


def test_combined_selectivity_and_matching(stats):
    predicates = [
        Predicate.equals("cargo.desc", "frozen food"),
        Predicate.equals("cargo.category", "general"),
    ]
    combined = stats.combined_selectivity(predicates)
    assert combined == pytest.approx(0.5 * 1.0)
    assert stats.estimated_matching("cargo", predicates) == pytest.approx(5.0)
    # Cross-class predicates are ignored at class level.
    cross = [Predicate.comparison("driver.licenseClass", ">=", "vehicle.class")]
    assert stats.estimated_matching("cargo", cross) == pytest.approx(10.0)
