"""Unit tests for the object store."""

import pytest

from repro.data import build_evaluation_schema
from repro.engine import ObjectStore, StorageError


@pytest.fixture()
def store():
    return ObjectStore(build_evaluation_schema())


def test_insert_assigns_oids_and_counts(store):
    first = store.insert("cargo", {"desc": "frozen food"})
    second = store.insert("cargo", {"desc": "textiles"})
    assert first.oid == 1 and second.oid == 2
    assert store.count("cargo") == 2
    assert store.total_instances() == 2
    assert store.counts()["cargo"] == 2
    assert store.has_class("cargo") and not store.has_class("warehouse")


def test_insert_validates_class_and_attributes(store):
    with pytest.raises(StorageError):
        store.insert("warehouse", {})
    with pytest.raises(StorageError):
        store.insert("cargo", {"colour": "red"})


def test_get_update_delete(store):
    instance = store.insert("cargo", {"desc": "frozen food", "quantity": 10})
    assert store.get("cargo", instance.oid) is instance
    store.update("cargo", instance.oid, {"quantity": 20})
    assert store.get("cargo", instance.oid).values["quantity"] == 20
    store.delete("cargo", instance.oid)
    assert store.get("cargo", instance.oid) is None
    with pytest.raises(StorageError):
        store.delete("cargo", instance.oid)
    with pytest.raises(StorageError):
        store.update("cargo", instance.oid, {"quantity": 1})


def test_update_maintains_indexes(store):
    instance = store.insert("cargo", {"desc": "frozen food"})
    from repro.constraints import Predicate

    assert store.indexes.lookup(Predicate.equals("cargo.desc", "frozen food")) == [
        instance.oid
    ]
    store.update("cargo", instance.oid, {"desc": "textiles"})
    assert store.indexes.lookup(Predicate.equals("cargo.desc", "frozen food")) == []
    assert store.indexes.lookup(Predicate.equals("cargo.desc", "textiles")) == [
        instance.oid
    ]


def test_insert_many(store):
    rows = [{"desc": f"cargo {i}"} for i in range(5)]
    instances = store.insert_many("cargo", rows)
    assert len(instances) == 5
    assert store.count("cargo") == 5


def test_dereference_and_referrers(store):
    vehicle = store.insert("vehicle", {"desc": "van"})
    cargo = store.insert("cargo", {"desc": "frozen food", "collects": vehicle.oid})
    assert store.dereference(cargo, "collects", "vehicle") is vehicle
    referrers = store.referrers(vehicle, "cargo", "collects")
    assert referrers == [cargo]


def test_pointer_oids_handles_lists(store):
    vehicle_a = store.insert("vehicle", {"desc": "van"})
    vehicle_b = store.insert("vehicle", {"desc": "lorry"})
    cargo = store.insert(
        "cargo", {"desc": "bulk", "collects": [vehicle_a.oid, vehicle_b.oid]}
    )
    assert cargo.pointer_oids("collects") == [vehicle_a.oid, vehicle_b.oid]
    assert cargo.pointer("collects") == vehicle_a.oid
    assert cargo.pointer_oids("supplies") == []


def test_pointer_type_errors(store):
    cargo = store.insert("cargo", {"desc": "bulk", "collects": "not an oid"})
    with pytest.raises(TypeError):
        cargo.pointer_oids("collects")


def test_qualified_values_and_copy(store):
    cargo = store.insert("cargo", {"desc": "bulk", "quantity": 4})
    qualified = cargo.qualified_values()
    assert qualified["cargo.desc"] == "bulk"
    clone = cargo.copy()
    clone.values["desc"] = "other"
    assert cargo.values["desc"] == "bulk"
    assert cargo.matches({"desc": "bulk"}) and not cargo.matches({"desc": "x"})


# ----------------------------------------------------------------------
# Mutation journal (replica catch-up for the parallel engine's workers)
# ----------------------------------------------------------------------
def test_journal_records_and_replays_mutations(store):
    schema = store.schema
    replica = ObjectStore(schema)
    first = store.insert("cargo", {"desc": "frozen food", "quantity": 10})
    store.insert("cargo", {"desc": "textiles", "quantity": 20})
    store.update("cargo", first.oid, {"quantity": 15})
    delta = store.journal_since(replica.version)
    assert [record.op for record in delta] == ["insert", "insert", "update"]
    assert replica.apply_journal(delta) == 3
    assert replica.version == store.version
    assert replica.shard_versions() == store.shard_versions()
    assert replica.get("cargo", first.oid).values == first.values
    # Replay is idempotent: an overlapping batch applies nothing twice.
    assert replica.apply_journal(delta) == 0
    store.delete("cargo", first.oid)
    assert replica.apply_journal(store.journal_since(replica.version)) == 1
    assert replica.get("cargo", first.oid) is None
    # The replica continues assigning fresh OIDs above the replayed ones.
    assert replica.insert("cargo", {"desc": "late"}).oid == store.insert(
        "cargo", {"desc": "late"}
    ).oid


def test_journal_since_reports_unbridgeable_gaps():
    store = ObjectStore(build_evaluation_schema(), journal_limit=4)
    for i in range(8):
        store.insert("cargo", {"desc": f"row {i}"})
    assert store.journal_since(store.version) == []
    assert len(store.journal_since(store.version - 4)) == 4
    assert store.journal_since(0) is None  # bounded retention overflow
    # An index rebuild after un-journaled in-place repairs truncates the
    # journal entirely: nothing since before it can be bridged — not even
    # a replica at the *exact* post-rebuild version, whose rows may have
    # diverged through the un-journaled repairs (regression: this used to
    # return [] and silently keep stale rows).
    version = store.version
    store.rebuild_indexes()
    assert store.journal_since(version) is None
    assert store.journal_since(store.version) is None


def test_journal_since_rejects_future_versions():
    # A replica *ahead* of the store (e.g. the primary lost un-fsynced WAL
    # tail frames in a crash) must not be told it is caught up (regression:
    # this used to return [] for version > store.version).
    store = ObjectStore(build_evaluation_schema())
    store.insert("cargo", {"desc": "row"})
    assert store.journal_since(store.version) == []
    assert store.journal_since(store.version + 1) is None
    assert store.journal_since(store.version + 100) is None


def test_journal_boundary_after_eviction_stays_bridgeable():
    # The eviction floor is *inclusive*: a replica at exactly the floor
    # version can still catch up, because the record that advanced the
    # store to the floor version was journaled before being popped.
    store = ObjectStore(build_evaluation_schema(), journal_limit=4)
    for i in range(8):
        store.insert("cargo", {"desc": f"row {i}"})
    floor = store.version - 4
    delta = store.journal_since(floor)
    assert [record.seq for record in delta] == list(
        range(floor + 1, store.version + 1)
    )
    assert store.journal_since(floor - 1) is None


def test_journal_replay_preserves_index_answers():
    from repro.constraints.predicate import ComparisonOperator, Predicate

    schema = build_evaluation_schema()
    store = ObjectStore(schema, shard_count=3)
    replica = ObjectStore(schema, shard_count=3)
    for i in range(9):
        store.insert("cargo", {"desc": "frozen food", "quantity": 100 + i})
    store.update("cargo", 2, {"quantity": 300})
    store.delete("cargo", 5)
    replica.apply_journal(store.journal_since(0))
    predicate = Predicate.selection(
        "cargo.quantity", ComparisonOperator.GE, 104
    )
    assert replica.indexes.lookup(predicate) == store.indexes.lookup(predicate)


def test_wrong_typed_indexed_value_is_rejected_atomically(store):
    store.insert("cargo", {"code": "C0", "desc": "frozen food", "quantity": 1})
    version = store.version
    # 'code' is an indexed string attribute: an int value must be rejected
    # BEFORE any state changes (a mid-index TypeError would leave the
    # extent and the indexes disagreeing with no version bump).
    with pytest.raises(StorageError, match="expects a string"):
        store.insert("cargo", {"code": 1})
    with pytest.raises(StorageError, match="expects a number"):
        store.insert("vehicle", {"vehicle_no": "V0", "class": "two"})
    with pytest.raises(StorageError, match="expects a string"):
        store.update("cargo", 1, {"desc": 7})
    assert store.count("cargo") == 1
    assert store.version == version
    assert store.journal_since(version) == []
    # Untyped junk on a NON-indexed attribute stays permitted (quantity is
    # not indexed), matching the generator's loose value discipline.
    store.update("cargo", 1, {"quantity": "many"})
