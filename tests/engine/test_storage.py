"""Unit tests for the object store."""

import pytest

from repro.data import build_evaluation_schema
from repro.engine import ObjectStore, StorageError


@pytest.fixture()
def store():
    return ObjectStore(build_evaluation_schema())


def test_insert_assigns_oids_and_counts(store):
    first = store.insert("cargo", {"desc": "frozen food"})
    second = store.insert("cargo", {"desc": "textiles"})
    assert first.oid == 1 and second.oid == 2
    assert store.count("cargo") == 2
    assert store.total_instances() == 2
    assert store.counts()["cargo"] == 2
    assert store.has_class("cargo") and not store.has_class("warehouse")


def test_insert_validates_class_and_attributes(store):
    with pytest.raises(StorageError):
        store.insert("warehouse", {})
    with pytest.raises(StorageError):
        store.insert("cargo", {"colour": "red"})


def test_get_update_delete(store):
    instance = store.insert("cargo", {"desc": "frozen food", "quantity": 10})
    assert store.get("cargo", instance.oid) is instance
    store.update("cargo", instance.oid, {"quantity": 20})
    assert store.get("cargo", instance.oid).values["quantity"] == 20
    store.delete("cargo", instance.oid)
    assert store.get("cargo", instance.oid) is None
    with pytest.raises(StorageError):
        store.delete("cargo", instance.oid)
    with pytest.raises(StorageError):
        store.update("cargo", instance.oid, {"quantity": 1})


def test_update_maintains_indexes(store):
    instance = store.insert("cargo", {"desc": "frozen food"})
    from repro.constraints import Predicate

    assert store.indexes.lookup(Predicate.equals("cargo.desc", "frozen food")) == [
        instance.oid
    ]
    store.update("cargo", instance.oid, {"desc": "textiles"})
    assert store.indexes.lookup(Predicate.equals("cargo.desc", "frozen food")) == []
    assert store.indexes.lookup(Predicate.equals("cargo.desc", "textiles")) == [
        instance.oid
    ]


def test_insert_many(store):
    rows = [{"desc": f"cargo {i}"} for i in range(5)]
    instances = store.insert_many("cargo", rows)
    assert len(instances) == 5
    assert store.count("cargo") == 5


def test_dereference_and_referrers(store):
    vehicle = store.insert("vehicle", {"desc": "van"})
    cargo = store.insert("cargo", {"desc": "frozen food", "collects": vehicle.oid})
    assert store.dereference(cargo, "collects", "vehicle") is vehicle
    referrers = store.referrers(vehicle, "cargo", "collects")
    assert referrers == [cargo]


def test_pointer_oids_handles_lists(store):
    vehicle_a = store.insert("vehicle", {"desc": "van"})
    vehicle_b = store.insert("vehicle", {"desc": "lorry"})
    cargo = store.insert(
        "cargo", {"desc": "bulk", "collects": [vehicle_a.oid, vehicle_b.oid]}
    )
    assert cargo.pointer_oids("collects") == [vehicle_a.oid, vehicle_b.oid]
    assert cargo.pointer("collects") == vehicle_a.oid
    assert cargo.pointer_oids("supplies") == []


def test_pointer_type_errors(store):
    cargo = store.insert("cargo", {"desc": "bulk", "collects": "not an oid"})
    with pytest.raises(TypeError):
        cargo.pointer_oids("collects")


def test_qualified_values_and_copy(store):
    cargo = store.insert("cargo", {"desc": "bulk", "quantity": 4})
    qualified = cargo.qualified_values()
    assert qualified["cargo.desc"] == "bulk"
    clone = cargo.copy()
    clone.values["desc"] = "other"
    assert cargo.values["desc"] == "bulk"
    assert cargo.matches({"desc": "bulk"}) and not cargo.matches({"desc": "x"})
