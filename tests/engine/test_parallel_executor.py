"""Parallel executor: parity with the in-process engines, fallbacks, pools."""

import pytest

from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.engine import (
    ConventionalPlanner,
    CostModel,
    ExecutionMode,
    ParallelExecutor,
    QueryExecutor,
    ScanNode,
    VectorizedExecutor,
    create_executor,
    default_worker_count,
)
from repro.engine.modes import WORKERS_ENV_VAR, resolve_worker_count


@pytest.fixture(scope="module")
def sharded_setup():
    """A DB1 evaluation setup over a 4-shard store (shared, read-only)."""
    return build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=16, seed=11, shard_count=4
    )


def _forced(setup, join_strategy="hash", workers=2):
    """A parallel executor that fans out even on tiny driver sets."""
    return ParallelExecutor(
        setup.schema,
        setup.store,
        join_strategy=join_strategy,
        workers=workers,
        min_partition_rows=1,
    )


@pytest.mark.parametrize("join_strategy", ["hash", "nested_loop"])
def test_rows_and_metrics_match_other_engines(sharded_setup, join_strategy):
    setup = sharded_setup
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    rowwise = QueryExecutor(setup.schema, setup.store, join_strategy=join_strategy)
    vectorized = VectorizedExecutor(
        setup.schema, setup.store, join_strategy=join_strategy
    )
    parallel = _forced(setup, join_strategy)
    try:
        for query in setup.queries:
            plan = planner.plan(query)
            reference = rowwise.execute_plan(plan)
            vec = vectorized.execute_plan(plan)
            par = parallel.execute_plan(plan)
            assert par.rows == reference.rows, query.name
            assert par.rows == vec.rows, query.name
            assert par.metrics.as_dict() == reference.metrics.as_dict(), query.name
    finally:
        parallel.close()


def test_batch_api_matches_single_plan_api(sharded_setup):
    setup = sharded_setup
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    plans = [planner.plan(query) for query in setup.queries]
    parallel = _forced(setup)
    try:
        batched = parallel.execute_plans(plans)
        for plan, result in zip(plans, batched):
            single = parallel.execute_plan(plan)
            assert result.rows == single.rows
            assert result.metrics == single.metrics
    finally:
        parallel.close()


def test_shard_reports_cover_the_driver_partitions(sharded_setup):
    setup = sharded_setup
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    parallel = _forced(setup)
    try:
        fanned = None
        for query in setup.queries:
            result = parallel.execute_plan(planner.plan(query))
            if result.shard_reports is not None:
                fanned = result
                break
        assert fanned is not None, "no query fanned out on the 4-shard store"
        shard_ids = [report.shard_id for report in fanned.shard_reports]
        assert len(shard_ids) == len(set(shard_ids))
        assert all(0 <= shard_id < 4 for shard_id in shard_ids)
        assert all(report.driver_rows > 0 for report in fanned.shard_reports)
        assert all(report.elapsed >= 0.0 for report in fanned.shard_reports)
        assert sum(r.row_count for r in fanned.shard_reports) == len(fanned.rows)
    finally:
        parallel.close()


def test_small_driver_sets_stay_in_process(sharded_setup):
    setup = sharded_setup
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    conservative = ParallelExecutor(
        setup.schema, setup.store, workers=2, min_partition_rows=10_000
    )
    try:
        for query in setup.queries[:4]:
            result = conservative.execute_plan(planner.plan(query))
            assert result.shard_reports is None
        assert conservative._pool is None
    finally:
        conservative.close()


def test_single_worker_never_forks(sharded_setup):
    setup = sharded_setup
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    solo = ParallelExecutor(
        setup.schema, setup.store, workers=1, min_partition_rows=1
    )
    vectorized = VectorizedExecutor(setup.schema, setup.store)
    for query in setup.queries[:4]:
        plan = planner.plan(query)
        result = solo.execute_plan(plan)
        assert result.shard_reports is None
        assert result.rows == vectorized.execute_plan(plan).rows
    assert solo._pool is None


def test_store_mutation_syncs_live_workers_without_reforking(evaluation_schema):
    """A journaled write reaches live workers as a replayed delta."""
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=6, seed=3, shard_count=2
    )
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    rowwise = QueryExecutor(setup.schema, setup.store)
    parallel = _forced(setup)
    try:
        plan = planner.plan(setup.queries[0])
        first = parallel.execute_plan(plan)
        assert first.rows == rowwise.execute_plan(plan).rows
        pids_before = parallel.worker_pids()
        assert pids_before, "the first execution must have forked workers"
        setup.store.insert(
            "cargo",
            {"code": "CNEW", "desc": "late arrival", "quantity": 5,
             "category": "general"},
        )
        setup.store.update("cargo", 1, {"quantity": 9})
        second = parallel.execute_plan(plan)
        # Same worker processes — the mutations were shipped as a journal
        # delta, not by tearing the pool down — and the rows still match
        # the freshly planned row-wise answer over the mutated store.
        assert parallel.worker_pids() == pids_before
        assert second.rows == rowwise.execute_plan(plan).rows
    finally:
        parallel.close()


def test_journal_overflow_reforks_workers_correctly(evaluation_schema):
    """A gap the journal cannot bridge re-forks workers with fresh state."""
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=6, seed=3, shard_count=2
    )
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    rowwise = QueryExecutor(setup.schema, setup.store)
    parallel = _forced(setup)
    try:
        plan = planner.plan(setup.queries[0])
        parallel.execute_plan(plan)
        pids_before = parallel.worker_pids()
        # Overflow the bounded journal so journal_since() reports a gap.
        store = setup.store
        for i in range(store.journal_limit + 1):
            oid = store.insert(
                "cargo",
                {"code": f"churn{i}", "desc": "churn", "quantity": 1,
                 "category": "general"},
            ).oid
            store.delete("cargo", oid)
        assert store.journal_since(0) is None
        second = parallel.execute_plan(plan)
        assert parallel.worker_pids() != pids_before
        assert second.rows == rowwise.execute_plan(plan).rows
    finally:
        parallel.close()


def test_partition_contract_on_planned_queries(sharded_setup):
    setup = sharded_setup
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    for query in setup.queries:
        plan = planner.plan(query)
        leaf = plan.partition_leaf()
        assert isinstance(leaf, ScanNode)
        assert leaf.class_name == plan.class_order[0]
        assert not leaf.partition_safe()
        for node in plan.root.walk():
            if node is not leaf:
                assert node.partition_safe()


def test_mode_parsing_factory_and_workers(sharded_setup, monkeypatch):
    setup = sharded_setup
    assert ExecutionMode.parse("parallel") is ExecutionMode.PARALLEL
    executor = create_executor(
        setup.schema, setup.store, mode="parallel", workers=3
    )
    assert isinstance(executor, ParallelExecutor)
    assert executor.mode is ExecutionMode.PARALLEL
    assert executor.workers == 3
    executor.close()

    monkeypatch.setenv(WORKERS_ENV_VAR, "7")
    assert default_worker_count() == 7
    assert resolve_worker_count(None) == 7
    monkeypatch.delenv(WORKERS_ENV_VAR)
    assert 1 <= default_worker_count() <= 4
    with pytest.raises(ValueError):
        resolve_worker_count("zero")
    with pytest.raises(ValueError):
        resolve_worker_count(0)


def test_cost_model_parallel_estimates(sharded_setup):
    setup = sharded_setup
    cost_model = CostModel(setup.schema, setup.statistics)
    query = setup.queries[0]
    vectorized = cost_model.estimate_query_cost(query, ExecutionMode.VECTORIZED)
    solo = cost_model.estimate_query_cost(query, ExecutionMode.PARALLEL, workers=1)
    wide = cost_model.estimate_query_cost(query, ExecutionMode.PARALLEL, workers=4)
    # One worker buys no division but pays dispatch: never cheaper than
    # the vectorized engine it wraps.
    assert solo >= vectorized
    # Widening the pool monotonically sheds distributed work but adds
    # dispatch; both estimates stay positive and finite.
    assert wide > 0.0
    speedup = cost_model.parallelization_speedup(query, workers=4)
    assert speedup > 0.0
    # Per-worker dispatch is modelled: on DB1-sized extents an absurdly
    # wide pool costs more than a sane one, and predicts a worse speedup.
    extreme = cost_model.estimate_query_cost(
        query, ExecutionMode.PARALLEL, workers=64
    )
    assert extreme > wide
    assert cost_model.parallelization_speedup(query, workers=64) < speedup
