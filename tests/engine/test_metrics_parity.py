"""Counter parity between the row-wise and vectorized engines.

Table 4.2 and Figure 4.1 report costs derived from ``ExecutionMetrics``
counters; those numbers may not depend on which engine executed the
workload.  These tests pin, on the shared fixture database and on a
generated DB1 instance, that every counter — instances_retrieved,
predicate_evaluations, pointer_traversals, index_lookups, rows_output —
agrees between engines for the same plan, for both join strategies, for
original and optimized queries alike.
"""

import pytest

from repro.constraints import Predicate
from repro.engine import (
    ConventionalPlanner,
    CostModel,
    ParallelExecutor,
    QueryExecutor,
    VectorizedExecutor,
)
from repro.query import Query
from repro.service import OptimizationService


def fixture_queries():
    """Hand-written queries covering scans, traversals and cross filters."""
    return [
        Query(
            projections=("cargo.code",),
            selective_predicates=(Predicate.equals("cargo.desc", "frozen food"),),
            classes=("cargo",),
        ),
        Query(
            projections=("cargo.code", "vehicle.vehicle_no"),
            selective_predicates=(Predicate.equals("cargo.desc", "frozen food"),),
            relationships=("collects",),
            classes=("cargo", "vehicle"),
        ),
        Query(
            projections=("supplier.name", "cargo.code", "vehicle.vehicle_no"),
            selective_predicates=(
                Predicate.selection("cargo.quantity", ">=", 52),
                Predicate.equals("supplier.region", "west"),
            ),
            relationships=("collects", "supplies"),
            classes=("supplier", "cargo", "vehicle"),
        ),
        Query(
            projections=("cargo.code",),
            join_predicates=(
                Predicate.comparison("cargo.quantity", ">=", "vehicle.class"),
            ),
            relationships=("collects",),
            classes=("cargo", "vehicle"),
        ),
    ]


@pytest.mark.parametrize("join_strategy", ["hash", "nested_loop"])
def test_counters_agree_on_fixture_database(
    seeded_logistics_database, join_strategy
):
    schema, store, statistics = seeded_logistics_database
    planner = ConventionalPlanner(schema, statistics)
    rowwise = QueryExecutor(schema, store, join_strategy=join_strategy)
    vectorized = VectorizedExecutor(schema, store, join_strategy=join_strategy)
    parallel = ParallelExecutor(
        schema, store, join_strategy=join_strategy, workers=2, min_partition_rows=1
    )
    try:
        for query in fixture_queries():
            plan = planner.plan(query)
            row_result = rowwise.execute_plan(plan)
            for executor in (vectorized, parallel):
                result = executor.execute_plan(plan)
                assert result.metrics.as_dict() == row_result.metrics.as_dict(), (
                    f"counter divergence for {query} on {executor.mode.value}"
                )
                assert result.rows == row_result.rows
                assert result.projections == row_result.projections
    finally:
        parallel.close()


def test_specific_counters_pinned(seeded_logistics_database):
    """The headline counters of the ISSUE, pinned explicitly."""
    schema, store, statistics = seeded_logistics_database
    planner = ConventionalPlanner(schema, statistics)
    plan = planner.plan(fixture_queries()[1])
    parallel = ParallelExecutor(schema, store, workers=2, min_partition_rows=1)
    try:
        for executor in (
            QueryExecutor(schema, store),
            VectorizedExecutor(schema, store),
            parallel,
        ):
            metrics = executor.execute_plan(plan).metrics
            assert metrics.rows_output == 2
            assert metrics.index_lookups == 1
            assert metrics.pointer_traversals == 2
    finally:
        parallel.close()


def test_counters_agree_on_generated_workload(small_setup):
    """Engine-independence over a generated DB1 workload, optimized included."""
    setup = small_setup
    service = OptimizationService(
        setup.schema,
        repository=setup.repository,
        cost_model=setup.cost_model,
    )
    planner = ConventionalPlanner(setup.schema, setup.statistics)
    cost_model = CostModel(setup.schema, setup.statistics)
    rowwise = QueryExecutor(setup.schema, setup.store, join_strategy="nested_loop")
    vectorized = VectorizedExecutor(
        setup.schema, setup.store, join_strategy="nested_loop"
    )
    for query in setup.queries:
        for candidate in (query, service.optimize(query).optimized):
            plan = planner.plan(candidate)
            row_metrics = rowwise.execute_plan(plan).metrics
            vec_metrics = vectorized.execute_plan(plan).metrics
            assert vec_metrics.as_dict() == row_metrics.as_dict()
            # Same counters => same scalar measured cost, which is the
            # quantity Table 4.2 buckets.
            assert cost_model.measured_cost(vec_metrics) == pytest.approx(
                cost_model.measured_cost(row_metrics)
            )
