"""Randomized differential-correctness oracle for the execution engines.

The optimizer's contract is that the optimized query answers exactly like
the original; the vectorized and parallel engines' contract is that they
answer exactly like the row-wise engine.  This harness checks all of it at
once: it generates a large seeded workload (~500 queries via
``repro.query.generator`` over a database from ``repro.data.generator``),
then runs every query

  (a) unoptimized, row-wise     (b) unoptimized, vectorized
  (c) optimized,   row-wise     (d) optimized,   vectorized
  (e) unoptimized, parallel     (f) optimized,   parallel

and asserts the answer sets are identical (projected onto the original
query's projection list, restricted — as ``answers_match`` does — to the
classes class elimination kept).  The parallel runs force the fan-out path
(``min_partition_rows=1``) so the per-shard pipelines and the
deterministic row/metric merge are exercised for every query, and their
metrics must equal the vectorized engine's exactly.  Any mismatch is
reported with the query, the combination and the differing rows.

Rerun with a chosen seed::

    REPRO_ORACLE_SEED=12345 PYTHONPATH=src \
        python -m pytest tests/engine/test_differential_oracle.py -q

``REPRO_ORACLE_QUERIES`` overrides the workload size the same way.
"""

import os

import pytest

from repro.core import OptimizerConfig
from repro.data import TABLE_4_1_SPECS, build_evaluation_setup
from repro.engine import ParallelExecutor, QueryExecutor, VectorizedExecutor
from repro.service import OptimizationService

#: Workload seed; override with REPRO_ORACLE_SEED to explore other corners.
ORACLE_SEED = int(os.environ.get("REPRO_ORACLE_SEED", "20260730"))
#: Number of generated queries (the ISSUE asks for ~500).
ORACLE_QUERIES = int(os.environ.get("REPRO_ORACLE_QUERIES", "500"))


@pytest.fixture(scope="module")
def oracle_setup():
    """A DB1-sized database plus a large seeded workload and a service."""
    setup = build_evaluation_setup(
        TABLE_4_1_SPECS["DB1"], query_count=ORACLE_QUERIES, seed=ORACLE_SEED
    )
    service = OptimizationService(
        setup.schema,
        repository=setup.repository,
        cost_model=setup.cost_model,
        config=OptimizerConfig(record_access_statistics=False),
    )
    return setup, service


def _answer_set(result, projections):
    """Rows of one execution projected onto ``projections``, as a set."""
    return {
        tuple(row.get(attribute) for attribute in projections)
        for row in result.rows
    }


def _shared_projections(original, optimized):
    """The original projections restricted to classes the optimizer kept."""
    optimized_classes = set(optimized.classes)
    shared = [
        attribute
        for attribute in original.projections
        if attribute.split(".", 1)[0] in optimized_classes
    ]
    return shared or list(optimized.projections)


def test_differential_oracle(oracle_setup):
    setup, service = oracle_setup
    rowwise = QueryExecutor(setup.schema, setup.store)
    vectorized = VectorizedExecutor(setup.schema, setup.store)
    parallel = ParallelExecutor(
        setup.schema, setup.store, workers=2, min_partition_rows=1
    )
    mismatches = []

    try:
        for query in setup.queries:
            optimized = service.optimize(query).optimized

            row_original = rowwise.execute(query)
            vec_original = vectorized.execute(query)
            par_original = parallel.execute(query)
            row_optimized = rowwise.execute(optimized)
            vec_optimized = vectorized.execute(optimized)
            par_optimized = parallel.execute(optimized)

            # Engine differential on the *same* query: rows must be
            # identical verbatim (same order, same attributes), not merely
            # set-equal — and the parallel merge must reproduce the
            # vectorized engine's metrics counter for counter.
            if vec_original.rows != row_original.rows:
                mismatches.append((query.name, "original rowwise vs vectorized"))
            if vec_optimized.rows != row_optimized.rows:
                mismatches.append((query.name, "optimized rowwise vs vectorized"))
            if par_original.rows != row_original.rows:
                mismatches.append((query.name, "original rowwise vs parallel"))
            if par_optimized.rows != row_optimized.rows:
                mismatches.append((query.name, "optimized rowwise vs parallel"))
            if par_original.metrics != vec_original.metrics:
                mismatches.append((query.name, "original parallel metrics"))
            if par_optimized.metrics != vec_optimized.metrics:
                mismatches.append((query.name, "optimized parallel metrics"))

            # Optimizer differential: answer sets on the shared projections.
            projections = _shared_projections(query, optimized)
            reference = _answer_set(row_original, projections)
            for label, result in (
                ("rowwise optimized", row_optimized),
                ("vectorized optimized", vec_optimized),
                ("vectorized original", vec_original),
                ("parallel optimized", par_optimized),
                ("parallel original", par_original),
            ):
                answers = _answer_set(result, projections)
                if answers != reference:
                    mismatches.append(
                        (
                            query.name,
                            f"{label}: {len(answers ^ reference)} differing rows",
                        )
                    )
    finally:
        parallel.close()

    assert not mismatches, (
        f"{len(mismatches)} answer mismatches across "
        f"{len(setup.queries)} queries (seed {ORACLE_SEED}): "
        f"{mismatches[:10]}"
    )


def test_oracle_workload_is_substantial(oracle_setup):
    """The oracle only means something if the workload actually is large."""
    setup, _service = oracle_setup
    assert len(setup.queries) >= min(ORACLE_QUERIES, 500)
    # The workload must exercise multi-class path queries, predicates and
    # projections — not 500 trivial scans.
    assert any(query.class_count >= 3 for query in setup.queries)
    assert any(query.selective_predicates for query in setup.queries)
