"""Property-based mutation oracle: engines vs. a fresh row-wise store.

The live write path opens the system to interleaved reads and writes —
exactly where warm caches (vectorized pointer/fragment buckets, the
parallel engine's journal-synced forked workers, the service result cache)
can go quietly stale.  This harness drives **seeded random schedules** of
``{insert, update, delete, optimize, execute}`` through a persistent
:class:`~repro.service.OptimizationService` (so every cache layer stays
warm across steps) and, after *every* execute step, asserts that rows
**and** :class:`~repro.engine.executor.ExecutionMetrics` are byte-identical
to executing the same optimized query on a **fresh single-shard store**
replaying the same writes with the row-wise engine — the configuration
with no caches to go stale.

Determinism and reproduction:

* the base seed comes from ``REPRO_ORACLE_SEED`` (defaults pinned);
* ``REPRO_ORACLE_SCHEDULES`` scales the per-engine schedule count
  (defaults: 120 row-wise, 120 vectorized, 60 parallel — 300 total);
* on failure the schedule is **shrunk** greedily to a minimal failing op
  list and printed together with the seed, so a repro is one copy-paste.

Schedules are built from abstract ops (targets are picked *by index into
the live OID set at apply time*), so any subsequence of a schedule is
itself a valid schedule — the property that makes shrinking sound.
"""

import os
import random

import pytest

from repro.constraints import ConstraintRepository
from repro.data import build_evaluation_constraints
from repro.engine import DatabaseStatistics, ObjectStore, QueryExecutor
from repro.engine.planner import ConventionalPlanner
from repro.query import parse_query
from repro.service import OptimizationService

SEED = int(os.environ.get("REPRO_ORACLE_SEED", "19910408"))

#: Schedules per engine; scaled by REPRO_ORACLE_SCHEDULES (a multiplier
#: percentage would be overkill — the env var simply overrides the base).
SCHEDULES = {
    "rowwise": int(os.environ.get("REPRO_ORACLE_SCHEDULES", "120")),
    "vectorized": int(os.environ.get("REPRO_ORACLE_SCHEDULES", "120")),
    "parallel": int(os.environ.get("REPRO_ORACLE_SCHEDULES", "60")),
}

QUERY_TEXTS = [
    '(SELECT {cargo.code, cargo.quantity} { } {cargo.quantity >= 30} { } {cargo})',
    '(SELECT {cargo.code} { } {cargo.desc = "frozen food"} { } {cargo})',
    '(SELECT {vehicle.vehicle_no} { } {vehicle.class >= 2} { } {vehicle})',
    '(SELECT {cargo.code, vehicle.desc} { } '
    '{vehicle.desc = "refrigerated truck"} {collects} {cargo, vehicle})',
    '(SELECT {supplier.name, cargo.code} { } {cargo.quantity >= 10} '
    '{supplies} {supplier, cargo})',
    '(SELECT {supplier.name, cargo.code, vehicle.vehicle_no} { } '
    '{supplier.rating >= 2} {supplies, collects} {supplier, cargo, vehicle})',
]

DESCS = ["frozen food", "textiles", "machinery"]
VEHICLE_DESCS = ["refrigerated truck", "van", "tanker"]


def _base_rows(rng):
    """The deterministic seed data of one schedule (applied as inserts)."""
    rows = []
    supplier_count = rng.randint(2, 4)
    vehicle_count = rng.randint(2, 5)
    cargo_count = rng.randint(6, 14)
    for i in range(supplier_count):
        rows.append(
            ("supplier", {"name": f"S{i}", "region": "west", "rating": 1 + i % 4})
        )
    for i in range(vehicle_count):
        rows.append(
            (
                "vehicle",
                {
                    "vehicle_no": f"V{i}",
                    "desc": VEHICLE_DESCS[i % len(VEHICLE_DESCS)],
                    "class": 1 + i % 4,
                    "capacity": 1000 * (1 + i % 3),
                },
            )
        )
    for i in range(cargo_count):
        values = {
            "code": f"C{i}",
            "desc": DESCS[i % len(DESCS)],
            "quantity": rng.randint(5, 90),
            "category": "general",
        }
        if supplier_count:
            values["supplies"] = 1 + i % supplier_count
        if vehicle_count:
            values["collects"] = 1 + i % vehicle_count
        rows.append(("cargo", values))
    return rows


def _build_schedule(rng):
    """An abstract op list: valid to apply in full or any subsequence."""
    ops = []
    for _ in range(rng.randint(5, 12)):
        kind = rng.choices(
            ["insert", "update", "delete", "execute", "optimize"],
            weights=[25, 20, 10, 35, 10],
        )[0]
        if kind == "insert":
            ops.append(
                (
                    "insert",
                    "cargo",
                    {
                        "code": f"N{rng.randint(0, 999)}",
                        "desc": rng.choice(DESCS),
                        "quantity": rng.randint(5, 120),
                        "category": "general",
                    },
                )
            )
        elif kind == "update":
            ops.append(("update", "cargo", rng.randrange(64), {"quantity": rng.randint(5, 120)}))
        elif kind == "delete":
            ops.append(("delete", "cargo", rng.randrange(64)))
        else:
            ops.append((kind, rng.randrange(len(QUERY_TEXTS))))
    # Every schedule ends with an execute so mutations at the tail are
    # always observed.
    ops.append(("execute", rng.randrange(len(QUERY_TEXTS))))
    return ops


class _Mismatch(AssertionError):
    """Engine output diverged from the fresh-store row-wise oracle."""


_REPOSITORY_CACHE = {}


def _repository(schema):
    """One precompiled static repository shared per schema (read-only)."""
    key = id(schema)
    repository = _REPOSITORY_CACHE.get(key)
    if repository is None:
        repository = ConstraintRepository(schema)
        repository.add_all(build_evaluation_constraints())
        repository.precompile()
        _REPOSITORY_CACHE[key] = repository
    return repository


def _run_schedule(schema, queries, engine, rng_seed, ops):
    """Apply ``ops``; raise :class:`_Mismatch` on the first divergence."""
    rng = random.Random(rng_seed)
    shard_count = rng.choice([1, 2, 3]) if engine != "rowwise" else rng.choice([1, 3])
    store = ObjectStore(schema, shard_count=shard_count)
    service = OptimizationService(
        schema,
        repository=_repository(schema),
        store=store,
        execution_mode=engine,
        engine_workers=2,
        engine_min_partition_rows=1 if engine == "parallel" else None,
    )
    applied = []  # the write log the oracle replays

    def apply_write(op):
        if op[0] == "insert":
            service.mutate("insert", op[1], values=op[2])
            applied.append(("insert", op[1], dict(op[2])))
            return
        live = [instance.oid for instance in store.instances(op[1])]
        if not live:
            return  # nothing to target; op degrades to a no-op
        oid = live[op[2] % len(live)]
        if op[0] == "update":
            service.mutate("update", op[1], oid=oid, values=op[3])
            applied.append(("update", op[1], oid, dict(op[3])))
        else:
            service.mutate("delete", op[1], oid=oid)
            applied.append(("delete", op[1], oid))

    def oracle_result(target):
        fresh = ObjectStore(schema, shard_count=1)
        for entry in applied:
            if entry[0] == "insert":
                fresh.insert(entry[1], entry[2])
            elif entry[0] == "update":
                fresh.update(entry[1], entry[2], entry[3])
            else:
                fresh.delete(entry[1], entry[2])
        statistics = DatabaseStatistics.collect(schema, fresh)
        planner = ConventionalPlanner(schema, statistics)
        executor = QueryExecutor(schema, fresh)
        return executor.execute_plan(planner.plan(target))

    try:
        for step, op in enumerate(ops):
            if op[0] in ("insert", "update", "delete"):
                apply_write(op)
            elif op[0] == "optimize":
                service.optimize(queries[op[1]])
            else:  # execute
                query = queries[op[1]]
                envelope = service.execute(query)
                target = envelope.executed_query
                expected = oracle_result(target)
                if envelope.execution.rows != expected.rows:
                    raise _Mismatch(
                        f"step {step}: rows diverged for {query.name} "
                        f"({len(envelope.execution.rows)} vs "
                        f"{len(expected.rows)} oracle rows)"
                    )
                if (
                    envelope.execution.metrics.as_dict()
                    != expected.metrics.as_dict()
                ):
                    raise _Mismatch(
                        f"step {step}: metrics diverged for {query.name}: "
                        f"{envelope.execution.metrics.as_dict()} vs "
                        f"{expected.metrics.as_dict()}"
                    )
    finally:
        service.close()


def _shrink(schema, queries, engine, rng_seed, ops):
    """Greedily drop ops while the schedule still fails (minimal repro)."""

    def fails(candidate):
        try:
            _run_schedule(schema, queries, engine, rng_seed, candidate)
        except _Mismatch:
            return True
        return False

    current = list(ops)
    changed = True
    while changed:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1 :]
            if candidate and fails(candidate):
                current = candidate
                changed = True
                break
    return current


#: Stable per-engine seed offsets (tuple hashes are not stable across
#: interpreter runs, so the seed is derived arithmetically).
_ENGINE_OFFSET = {"rowwise": 0, "vectorized": 1, "parallel": 2}


def _seed_for(engine, index):
    return SEED + 7919 * index + 104729 * _ENGINE_OFFSET[engine]


@pytest.mark.parametrize("engine", ["rowwise", "vectorized", "parallel"])
def test_mutation_schedules_match_fresh_store_oracle(evaluation_schema, engine):
    schema = evaluation_schema
    queries = [
        parse_query(text, name=f"oracle-{index}")
        for index, text in enumerate(QUERY_TEXTS)
    ]
    for query in queries:
        query.validate(schema)
    failures = []
    for index in range(SCHEDULES[engine]):
        seed = _seed_for(engine, index)
        rng = random.Random(seed)
        schedule = [
            ("insert",) + row for row in _base_rows(rng)
        ] + _build_schedule(rng)
        try:
            _run_schedule(schema, queries, engine, seed, schedule)
        except _Mismatch as exc:
            minimal = _shrink(schema, queries, engine, seed, schedule)
            failures.append(
                f"schedule #{index} (REPRO_ORACLE_SEED={SEED}, engine={engine}): "
                f"{exc}\n  minimal repro ({len(minimal)} ops): {minimal}"
            )
            break  # one shrunk repro is worth more than a failure flood
    assert not failures, "\n".join(failures)
