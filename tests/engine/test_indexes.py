"""Unit tests for secondary indexes."""

from repro.constraints import Predicate
from repro.data import build_evaluation_schema
from repro.engine import HashIndex, IndexManager, SortedIndex


def test_hash_index_insert_lookup_remove():
    index = HashIndex()
    index.insert("frozen food", 1)
    index.insert("frozen food", 2)
    index.insert("textiles", 3)
    assert sorted(index.lookup("frozen food")) == [1, 2]
    assert index.lookup("missing") == []
    assert index.distinct_values() == 2
    assert len(index) == 3
    index.remove("frozen food", 1)
    assert index.lookup("frozen food") == [2]
    index.remove("frozen food", 99)  # no-op
    assert len(index) == 2


def test_sorted_index_range_queries():
    index = SortedIndex()
    for value, oid in [(10, 1), (20, 2), (30, 3), (20, 4)]:
        index.insert(value, oid)
    assert sorted(index.range(low=20)) == [2, 3, 4]
    assert sorted(index.range(low=20, low_inclusive=False)) == [3]
    assert sorted(index.range(high=20)) == [1, 2, 4]
    assert sorted(index.range(high=20, high_inclusive=False)) == [1]
    assert sorted(index.range(low=15, high=25)) == [2, 4]
    index.remove(20, 2)
    assert sorted(index.range(low=20)) == [3, 4]
    assert SortedIndex().range(low=1) == []


def test_index_manager_builds_declared_indexes():
    schema = build_evaluation_schema()
    manager = IndexManager(schema)
    assert manager.is_indexed("cargo", "desc")
    assert not manager.is_indexed("cargo", "quantity")
    assert ("supplier", "name") in manager.indexed_attributes()


def test_index_manager_lookup_by_predicate():
    schema = build_evaluation_schema()
    manager = IndexManager(schema)
    manager.on_insert("cargo", 1, {"desc": "frozen food", "quantity": 10})
    manager.on_insert("cargo", 2, {"desc": "textiles", "quantity": 20})

    equality = Predicate.equals("cargo.desc", "frozen food")
    assert manager.lookup(equality) == [1]

    not_indexed = Predicate.equals("cargo.quantity", 10)
    assert manager.lookup(not_indexed) is None

    join = Predicate.comparison("driver.licenseClass", ">=", "vehicle.class")
    assert manager.lookup(join) is None

    not_equal = Predicate.selection("cargo.desc", "!=", "textiles")
    assert manager.lookup(not_equal) is None


def test_index_manager_range_lookup():
    schema = build_evaluation_schema()
    manager = IndexManager(schema)
    for oid, capacity in enumerate([1000, 2000, 3000], start=1):
        manager.on_insert("engine", oid, {"capacity": capacity})
    at_least = Predicate.selection("engine.capacity", ">=", 2000)
    assert sorted(manager.lookup(at_least)) == [2, 3]
    below = Predicate.selection("engine.capacity", "<", 2000)
    assert manager.lookup(below) == [1]
    assert manager.distinct_count("engine", "capacity") == 3
    assert manager.distinct_count("engine", "fuel") is None


def test_index_manager_delete_updates_indexes():
    schema = build_evaluation_schema()
    manager = IndexManager(schema)
    manager.on_insert("cargo", 1, {"desc": "frozen food"})
    manager.on_delete("cargo", 1, {"desc": "frozen food"})
    assert manager.lookup(Predicate.equals("cargo.desc", "frozen food")) == []
