"""Runtime index lifecycle: journaling, replay convergence, cache deltas.

``create_index``/``drop_index`` are journaled mutations: every applied op
moves the global version by exactly one (the journal/WAL seq-density
invariant), no-ops never journal, and replicas, snapshot restores and
forked parallel workers all converge on the same live index set through
the same records as data writes.
"""

import pytest

from repro.data import build_evaluation_schema
from repro.engine import ParallelExecutor, QueryExecutor
from repro.engine.statistics import StatisticsCache
from repro.engine.storage import (
    MutationRecord,
    ShardedObjectStore,
    StorageError,
)
from repro.query import parse_query


@pytest.fixture(scope="module")
def schema():
    return build_evaluation_schema()


def _seed_store(schema, shard_count=2, rows=12):
    store = ShardedObjectStore(schema, shard_count=shard_count)
    for i in range(rows):
        store.insert(
            "cargo",
            {
                "code": f"C{i}",
                "desc": "frozen food" if i % 3 == 0 else "textiles",
                "quantity": 100 + i,
                "category": "general",
            },
        )
    return store


def test_index_ops_journal_one_version_each(schema):
    store = _seed_store(schema)
    v0 = store.version
    assert not store.indexes.is_indexed("cargo", "quantity")

    assert store.create_index("cargo", "quantity")
    assert store.version == v0 + 1
    (record,) = store.journal_since(v0)
    assert record.op == "create_index"
    assert record.class_name == "cargo"
    assert record.values == {"attribute": "quantity"}
    assert store.indexes.is_indexed("cargo", "quantity")

    assert store.drop_index("cargo", "quantity")
    assert store.version == v0 + 2
    records = store.journal_since(v0)
    assert [r.op for r in records] == ["create_index", "drop_index"]
    assert not store.indexes.is_indexed("cargo", "quantity")


def test_noop_index_ops_never_journal(schema):
    store = _seed_store(schema)
    v0 = store.version
    # "category" is schema-declared: creating it again is a no-op.
    assert store.create_index("cargo", "category") is False
    # "quantity" carries no index: dropping it is a no-op too.
    assert store.drop_index("cargo", "quantity") is False
    assert store.version == v0
    assert store.journal_since(v0) == []


def test_index_ops_validate_their_target(schema):
    store = _seed_store(schema)
    with pytest.raises(StorageError):
        store.create_index("no_such_class", "quantity")
    with pytest.raises(StorageError):
        store.create_index("cargo", "no_such_attribute")
    with pytest.raises(StorageError):
        store.create_index("cargo", "supplies")  # pointer attribute


def test_replica_converges_through_journal_and_snapshot(schema):
    primary = _seed_store(schema)
    replica = ShardedObjectStore.restore(
        schema, primary.snapshot_header(), primary.snapshot_rows()
    )
    assert replica.version == primary.version

    primary.create_index("cargo", "quantity")
    primary.insert(
        "cargo",
        {"code": "C99", "desc": "late", "quantity": 999, "category": "bulk"},
    )
    primary.drop_index("cargo", "desc")  # schema-declared, live until now

    records = primary.journal_since(replica.version)
    assert [r.op for r in records] == ["create_index", "insert", "drop_index"]
    assert replica.apply_journal(records) == 3

    assert replica.version == primary.version
    assert replica.indexes.is_indexed("cargo", "quantity")
    assert not replica.indexes.is_indexed("cargo", "desc")
    assert replica.index_overrides() == primary.index_overrides()
    assert list(replica.snapshot_rows()) == list(primary.snapshot_rows())
    # The restored override set survives a further snapshot round-trip.
    twice = ShardedObjectStore.restore(
        schema, replica.snapshot_header(), replica.snapshot_rows()
    )
    assert twice.index_overrides() == primary.index_overrides()
    assert twice.indexes.is_indexed("cargo", "quantity")


def test_replayed_noop_index_op_is_divergence(schema):
    store = _seed_store(schema)
    record = MutationRecord(
        store.version + 1, "create_index", "cargo", 0, {"attribute": "category"}
    )
    # "category" is already indexed here: the journaling store's version
    # advanced, ours cannot — that is divergence, not a duplicate.
    with pytest.raises(StorageError, match="no-op"):
        store.apply_journal([record])


def test_statistics_cache_refreshes_index_set_without_recollect(schema):
    store = _seed_store(schema)
    cache = StatisticsCache(schema, store)
    before = cache.get()
    assert cache.full_collects == 1
    assert before.is_indexed("cargo", "category") is True

    store.drop_index("cargo", "category")
    after = cache.get()
    # Index-only delta: the live-index set refreshed, the data statistics
    # were reused verbatim — no extent walk ran.
    assert after.is_indexed("cargo", "category") is False
    assert cache.full_collects == 1
    assert cache.partial_collects == 0
    assert after.cardinality("cargo") == before.cardinality("cargo")
    assert after.attributes == before.attributes

    store.create_index("cargo", "quantity")
    assert cache.get().is_indexed("cargo", "quantity") is True
    assert cache.collects == 1


def test_parallel_workers_sync_index_ops_without_reforking(schema):
    store = _seed_store(schema, rows=32)
    query = parse_query(
        "(SELECT {cargo.code} { } {cargo.quantity = 110} { } {cargo})",
        name="quantity-probe",
    )
    rowwise = QueryExecutor(schema, store)
    parallel = ParallelExecutor(schema, store, workers=2, min_partition_rows=1)
    try:
        cold = parallel.execute(query)
        pids = parallel.worker_pids()
        assert cold.rows == rowwise.execute(query).rows

        store.create_index("cargo", "quantity")
        warm = parallel.execute(query)
        # The forked workers bridged the create_index record through the
        # journal — same processes, now answering through the new index.
        assert parallel.worker_pids() == pids
        assert warm.rows == rowwise.execute(query).rows
        assert warm.metrics.index_lookups > cold.metrics.index_lookups
    finally:
        parallel.close()
