"""Tests for the command-line interface."""


from repro.cli import build_parser, main

PAPER_QUERY = (
    '(SELECT {vehicle.vehicle#, cargo.desc, cargo.quantity} { } '
    '{vehicle.desc = "refrigerated truck", supplier.name = "SFI"} '
    '{collects, supplies} {supplier, cargo, vehicle})'
)


def test_parser_defaults():
    args = build_parser().parse_args([PAPER_QUERY])
    assert args.schema == "example"
    assert not args.priority_queue
    assert args.budget is None


def test_cli_optimizes_paper_query(capsys):
    exit_code = main([PAPER_QUERY])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Eliminated classes: supplier" in captured.out
    assert 'cargo.desc = "frozen food"' in captured.out
    assert "Optimized query:" in captured.out


def test_cli_with_options(capsys):
    exit_code = main(
        [PAPER_QUERY, "--no-class-elimination", "--priority-queue", "--budget", "5"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Eliminated classes" not in captured.out


def test_cli_evaluation_schema(capsys):
    query = (
        '(SELECT {cargo.code} { } {vehicle.desc = "refrigerated truck"} '
        "{collects} {cargo, vehicle})"
    )
    exit_code = main(["--schema", "evaluation", query])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Predicate classification" in captured.out


def test_cli_rejects_bad_query(capsys):
    exit_code = main(["(SELECT {nothing})"])
    captured = capsys.readouterr()
    assert exit_code == 2
    assert "error" in captured.err


def test_cli_without_query_prints_help(capsys):
    exit_code = main([])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "usage" in captured.out.lower()


def test_cli_experiments_quick(capsys):
    exit_code = main(["--experiments", "--quick"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Table 4.1" in captured.out
    assert "Table 4.2" in captured.out
