"""Smoke tests for the public package API."""

import repro


def test_version_and_all_exports():
    assert repro.__version__
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_quickstart_flow_from_docstring():
    """The flow shown in the package docstring must work as written."""
    schema = repro.build_example_schema()
    repository = repro.ConstraintRepository(schema)
    repository.add_all(repro.build_example_constraints())
    optimizer = repro.SemanticQueryOptimizer(schema, repository=repository)
    query = repro.parse_query(
        '(SELECT {vehicle.vehicle_no, cargo.desc, cargo.quantity} { } '
        '{vehicle.desc = "refrigerated truck", supplier.name = "SFI"} '
        '{collects, supplies} {supplier, cargo, vehicle})'
    )
    result = optimizer.optimize(query)
    assert sorted(result.eliminated_classes) == ["supplier"]
    assert result.was_transformed
